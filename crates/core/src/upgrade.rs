//! Algorithm 1: upgrading a single product against a skyline of
//! dominators.
//!
//! Two families of candidate upgrades are evaluated (paper Section II):
//!
//! 1. **Single-dimension**: on each dimension `D_k`, beat *every* skyline
//!    point by moving to `min_s(s.d_k) − ε`.
//! 2. **Multi-dimension**: for every pair of skyline points `s_i`, `s_j`
//!    consecutive in `D_k` order, move to `s_j.d_k − ε` on `D_k` and
//!    `s_i.d_x − ε` on every other dimension. Lemma 1 proves any such
//!    candidate is non-dominated.
//!
//! Deliberate refinement (see DESIGN.md): every candidate coordinate is
//! clamped to never exceed the product's current value,
//! `min(t.d_x, s.d_x − ε)`. This preserves Lemma 1's proof, guarantees
//! `upgraded ≼ original` (hence non-negative cost under monotone cost
//! functions), and makes the "not dominated by the dominator skyline ⇒
//! not dominated by all of P" transitivity argument airtight.

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use skyup_geom::{ColumnarPoints, PointId, PointStore};
use skyup_obs::{Counter, Recorder};

/// Reusable buffers for repeated [`upgrade_single_into`] calls: the
/// per-dimension sort order, the candidate being evaluated, and the best
/// upgrade found. One scratch per probing worker makes Algorithm 1
/// allocation-free after the buffers reach the workload's
/// dimensionality / skyline high-water mark.
pub struct UpgradeScratch {
    order: Vec<PointId>,
    candidate: Vec<f64>,
    best: Vec<f64>,
    /// Store-row membership bits for [`upgrade_single_presorted_into`]'s
    /// subsequence filter; bits are set and cleared per call, never
    /// zeroed wholesale.
    mask: Vec<u8>,
}

impl UpgradeScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            order: Vec::new(),
            candidate: Vec::new(),
            best: Vec::new(),
            mask: Vec::new(),
        }
    }

    /// The upgraded coordinates left by the last
    /// [`upgrade_single_into`] call.
    pub fn upgraded(&self) -> &[f64] {
        &self.best
    }
}

impl Default for UpgradeScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes the cheapest upgrade of product `t` (coordinates) against
/// `skyline`, the skyline of `t`'s dominators in the competitor set.
/// Returns `(cost, upgraded_coordinates)`.
///
/// When `skyline` is empty, `t` is already competitive: cost `0`, output
/// equals input.
///
/// # Contract
/// Every point in `skyline` must dominate `t` (checked with
/// `debug_assert`), and `cost_fn` must be monotone. Under that contract
/// the returned product is dominated by no point of `skyline`, and by
/// transitivity by no point of the full competitor set the skyline was
/// derived from.
///
/// ```
/// use skyup_core::{upgrade_single, UpgradeConfig};
/// use skyup_core::cost::SumCost;
/// use skyup_geom::PointStore;
///
/// let mut p = PointStore::new(2);
/// let s1 = p.push(&[0.2, 0.6]);
/// let s2 = p.push(&[0.5, 0.3]);
/// let cost_fn = SumCost::reciprocal(2, 1e-2);
/// let (cost, upgraded) = upgrade_single(
///     &p, &[s1, s2], &[0.7, 0.8], &cost_fn, &UpgradeConfig::default(),
/// );
/// assert!(cost > 0.0);
/// assert!(!skyup_geom::dominance::dominates(p.point(s1), &upgraded));
/// assert!(!skyup_geom::dominance::dominates(p.point(s2), &upgraded));
/// ```
pub fn upgrade_single<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    skyline: &[PointId],
    t: &[f64],
    cost_fn: &C,
    cfg: &UpgradeConfig,
) -> (f64, Vec<f64>) {
    let mut scratch = UpgradeScratch::new();
    let cost = upgrade_single_into(p_store, skyline, t, cost_fn, cfg, &mut scratch);
    (cost, scratch.best)
}

/// [`upgrade_single`] writing into caller-provided buffers: the upgraded
/// coordinates are left in the scratch ([`UpgradeScratch::upgraded`])
/// and only the cost is returned. Bit-identical computation; a warm
/// scratch makes the call allocation-free.
pub fn upgrade_single_into<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    skyline: &[PointId],
    t: &[f64],
    cost_fn: &C,
    cfg: &UpgradeConfig,
    scratch: &mut UpgradeScratch,
) -> f64 {
    let dims = t.len();
    debug_assert_eq!(p_store.dims(), dims);
    debug_assert_eq!(cost_fn.dims(), dims);
    debug_assert!(
        skyline
            .iter()
            .all(|&s| skyup_geom::dominance::dominates(p_store.point(s), t)),
        "upgrade_single requires every skyline point to dominate t"
    );

    let best = &mut scratch.best;
    best.clear();
    best.extend_from_slice(t);

    if skyline.is_empty() {
        return 0.0;
    }

    let base_cost = cost_fn.product_cost(t);
    let mut best_cost = f64::INFINITY;

    // Scratch buffers reused across dimensions (and across calls).
    let order = &mut scratch.order;
    order.clear();
    order.extend_from_slice(skyline);
    let candidate = &mut scratch.candidate;
    candidate.clear();
    candidate.resize(dims, 0.0);

    for k in 0..dims {
        // Line 3: sort skyline ascending by the current dimension. The
        // sort is stable and `order` carries over between dimensions,
        // so points tied on D_k keep the *previous* dimension's order —
        // [`DimOrders`] replicates exactly this chaining.
        order.sort_by(|&a, &b| p_store.point(a)[k].total_cmp(&p_store.point(b)[k]));
        sweep_dimension(
            p_store,
            order,
            k,
            t,
            base_cost,
            cost_fn,
            cfg,
            candidate,
            best,
            &mut best_cost,
        );
    }

    best_cost
}

/// One dimension's candidate sweep (Algorithm 1 lines 4-16 plus the
/// extended-candidate family) over `order`, the dominators sorted
/// ascending by dimension `k`. Factored out so the per-product path
/// ([`upgrade_single_into`]) and the batch path
/// ([`upgrade_single_presorted_into`]) run the exact same float
/// operations in the exact same sequence — this shared body is what
/// makes the two entry points bit-identical.
#[allow(clippy::too_many_arguments)]
#[inline]
fn sweep_dimension<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    order: &[PointId],
    k: usize,
    t: &[f64],
    base_cost: f64,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    candidate: &mut [f64],
    best: &mut [f64],
    best_cost: &mut f64,
) {
    let eps = cfg.epsilon;
    let dims = t.len();

    // Lines 4-7: the single-dimension upgrade beating everyone on D_k.
    let s_min = p_store.point(order[0]);
    let new_v = (s_min[k] - eps).min(t[k]);
    let single_cost = cost_fn.attr_cost(k, new_v) - cost_fn.attr_cost(k, t[k]);
    if single_cost < *best_cost {
        *best_cost = single_cost;
        best.copy_from_slice(t);
        best[k] = new_v;
    }

    // Lines 8-16: slide between consecutive skyline points.
    for w in order.windows(2) {
        let s_i = p_store.point(w[0]);
        let s_j = p_store.point(w[1]);
        for x in 0..dims {
            let bound = if x == k { s_j[x] } else { s_i[x] };
            candidate[x] = (bound - eps).min(t[x]);
        }
        let cost = cost_fn.product_cost(candidate) - base_cost;
        if cost < *best_cost {
            *best_cost = cost;
            best.copy_from_slice(candidate);
        }
    }

    // Extension (off by default): beat the *last* skyline point on
    // all dimensions except D_k, keeping t's own D_k value. Points
    // earlier in the D_k order cannot dominate the candidate for the
    // same reason as in Lemma 1's third case.
    if cfg.extended_candidates {
        let s_last = p_store.point(order[order.len() - 1]);
        for x in 0..dims {
            candidate[x] = if x == k {
                t[x]
            } else {
                (s_last[x] - eps).min(t[x])
            };
        }
        let cost = cost_fn.product_cost(candidate) - base_cost;
        if cost < *best_cost {
            *best_cost = cost;
            best.copy_from_slice(candidate);
        }
    }
}

/// A skyline pre-sorted by every dimension, shared across a batch of
/// [`upgrade_single_presorted_into`] calls.
///
/// Algorithm 1 spends a large share of its time re-sorting each
/// product's dominator list once per dimension. Within a batch every
/// dominator list is a subset of one shared skyline, so the sorts can
/// be hoisted: sort the skyline by each dimension once, then recover
/// any subset's per-dimension order as a subsequence filter.
pub struct DimOrders {
    per_dim: Vec<Vec<PointId>>,
}

impl DimOrders {
    /// Stably sorts `skyline` ascending by each dimension, *chained*:
    /// dimension `k`'s sort starts from dimension `k−1`'s output, just
    /// as [`upgrade_single_into`]'s reused `order` buffer does. The
    /// chaining is load-bearing for bit-identity — points tied on `D_k`
    /// keep a history-dependent relative order, and the per-product
    /// path and this hoisted path must agree on it.
    ///
    /// `skyline` must be in the same relative order as the dominator
    /// lists later passed to [`upgrade_single_presorted_into`] — in
    /// practice both are id-sorted.
    pub fn new(p_store: &PointStore, skyline: &[PointId]) -> Self {
        let mut order = skyline.to_vec();
        let per_dim = (0..p_store.dims())
            .map(|k| {
                order.sort_by(|&a, &b| p_store.point(a)[k].total_cmp(&p_store.point(b)[k]));
                order.clone()
            })
            .collect();
        Self { per_dim }
    }
}

/// [`upgrade_single_into`] with the per-dimension sorts hoisted into a
/// shared [`DimOrders`]: each dimension's dominator order is recovered
/// by filtering the pre-sorted skyline down to `dominators` instead of
/// sorting per product.
///
/// # Bit-identity
///
/// Returns exactly the bits [`upgrade_single_into`] returns for the
/// same `(dominators, t, cost_fn, cfg)`. Both paths feed
/// [`sweep_dimension`] the same sequence, by induction over
/// dimensions: filtering commutes with a stable sort whenever the two
/// sort inputs agree on the subset's relative order. They agree at
/// `k = 0` (both start id-ordered), and each dimension's stable sort
/// preserves the agreement — [`DimOrders`] chains its sorts exactly
/// like the per-product path's reused `order` buffer, so even the
/// history-dependent order of points tied on `D_k` matches.
///
/// # Contract
///
/// `dominators` must be a subset of the skyline `orders` was built
/// from, in the same relative order, and every dominator must dominate
/// `t` (`debug_assert`ed).
pub fn upgrade_single_presorted_into<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    orders: &DimOrders,
    dominators: &[PointId],
    t: &[f64],
    cost_fn: &C,
    cfg: &UpgradeConfig,
    scratch: &mut UpgradeScratch,
) -> f64 {
    let dims = t.len();
    debug_assert_eq!(p_store.dims(), dims);
    debug_assert_eq!(cost_fn.dims(), dims);
    debug_assert_eq!(orders.per_dim.len(), dims);
    debug_assert!(
        dominators
            .iter()
            .all(|&s| skyup_geom::dominance::dominates(p_store.point(s), t)),
        "upgrade_single_presorted_into requires every dominator to dominate t"
    );

    let UpgradeScratch {
        order,
        candidate,
        best,
        mask,
    } = scratch;
    best.clear();
    best.extend_from_slice(t);

    if dominators.is_empty() {
        return 0.0;
    }

    let base_cost = cost_fn.product_cost(t);
    let mut best_cost = f64::INFINITY;
    candidate.clear();
    candidate.resize(dims, 0.0);

    // Membership bits for the subsequence filter. Only the dominator
    // rows are touched, so the buffer stays clean across calls without
    // wholesale zeroing.
    if mask.len() < p_store.len() {
        mask.resize(p_store.len(), 0);
    }
    for &d in dominators {
        mask[d.index()] = 1;
    }

    for (k, presorted) in orders.per_dim.iter().enumerate() {
        order.clear();
        order.extend(presorted.iter().copied().filter(|s| mask[s.index()] != 0));
        debug_assert_eq!(
            order.len(),
            dominators.len(),
            "dominators must be a subset of the skyline DimOrders was built from"
        );
        sweep_dimension(
            p_store,
            order,
            k,
            t,
            base_cost,
            cost_fn,
            cfg,
            candidate,
            best,
            &mut best_cost,
        );
    }

    for &d in dominators {
        mask[d.index()] = 0;
    }
    best_cost
}

/// Fallible twin of [`upgrade_single`]: checks the contract that the
/// debug-build asserts only sample — matching dimensionalities, finite
/// product coordinates, skyline ids in bounds, and every skyline point
/// actually dominating `t` — and reports violations as
/// [`SkyupError`](crate::SkyupError) instead of computing a garbage
/// upgrade (or panicking) in release builds.
pub fn try_upgrade_single<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    skyline: &[PointId],
    t: &[f64],
    cost_fn: &C,
    cfg: &UpgradeConfig,
) -> Result<(f64, Vec<f64>), crate::SkyupError> {
    use crate::SkyupError;
    if p_store.dims() != t.len() {
        return Err(SkyupError::DimensionMismatch {
            p_dims: p_store.dims(),
            t_dims: t.len(),
        });
    }
    if cost_fn.dims() != t.len() {
        return Err(SkyupError::InvalidConfig(format!(
            "cost function covers {} dimensions but the product has {}",
            cost_fn.dims(),
            t.len()
        )));
    }
    if let Some((i, v)) = t.iter().enumerate().find(|(_, c)| !c.is_finite()) {
        return Err(SkyupError::InvalidInput(format!(
            "product coordinate {i} is not finite ({v})"
        )));
    }
    for &s in skyline {
        if (s.0 as usize) >= p_store.len() {
            return Err(SkyupError::InvalidInput(format!(
                "skyline id {} is out of bounds for a {}-point store",
                s.0,
                p_store.len()
            )));
        }
        if !skyup_geom::dominance::dominates(p_store.point(s), t) {
            return Err(SkyupError::InvalidInput(format!(
                "skyline point {} does not dominate the product",
                s.0
            )));
        }
    }
    Ok(upgrade_single(p_store, skyline, t, cost_fn, cfg))
}

/// Filters a precomputed skyline of the *full* competitor set down to
/// the skyline of product `t`'s dominators, preserving input order.
///
/// Soundness is the identity `skyline(dominators(t)) = {s ∈ skyline(P) :
/// s dominates t}`: any skyline point dominating `t` is trivially an
/// undominated dominator, and conversely a skyline point of
/// `dominators(t)` cannot be dominated by any `p ∈ P` (such a `p` would
/// dominate `t` by transitivity and sit in `dominators(t)` itself), so
/// it is on `skyline(P)`. This lets a caller that already holds
/// `skyline(P)` — e.g. a serving snapshot — answer per-product queries
/// with one linear scan instead of an R-tree traversal.
pub fn dominators_from_skyline<R: Recorder + ?Sized>(
    p_store: &PointStore,
    p_skyline: &[PointId],
    t: &[f64],
    rec: &mut R,
) -> Vec<PointId> {
    rec.incr(Counter::DominanceTests, p_skyline.len() as u64);
    p_skyline
        .iter()
        .copied()
        .filter(|&s| skyup_geom::dominance::dominates(p_store.point(s), t))
        .collect()
}

/// Test/diagnostic helper: whether `candidate` is dominated by any point
/// of `skyline`. Runs through the blockwise columnar kernel (gathering
/// the skyline once), whose verdict is bit-identical to the scalar
/// `skyline.iter().any(dominates)` loop.
pub fn dominated_by_any(p_store: &PointStore, skyline: &[PointId], candidate: &[f64]) -> bool {
    let mut cols = ColumnarPoints::new(p_store.dims());
    cols.gather(p_store, skyline);
    cols.dominated_by_any(candidate).dominated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;

    fn cfg() -> UpgradeConfig {
        UpgradeConfig::with_epsilon(1e-4)
    }

    /// Figure 1 scenario: p dominated by two skyline points.
    #[test]
    fn figure_one_two_skyline_points() {
        let mut p = PointStore::new(2);
        let s1 = p.push(&[0.2, 0.6]);
        let s2 = p.push(&[0.5, 0.3]);
        let t = [0.7, 0.8];
        let cost_fn = SumCost::reciprocal(2, 1e-2);
        let sky = vec![s1, s2];
        let (cost, up) = upgrade_single(&p, &sky, &t, &cost_fn, &cfg());
        assert!(cost.is_finite() && cost > 0.0);
        assert!(
            !dominated_by_any(&p, &sky, &up),
            "upgraded {up:?} still dominated"
        );
        // The upgrade never worsens any attribute.
        assert!(up.iter().zip(&t).all(|(&u, &o)| u <= o));
    }

    #[test]
    fn empty_skyline_is_free() {
        let p = PointStore::new(3);
        let t = [1.0, 2.0, 3.0];
        let cost_fn = SumCost::reciprocal(3, 1e-2);
        let (cost, up) = upgrade_single(&p, &[], &t, &cost_fn, &cfg());
        assert_eq!(cost, 0.0);
        assert_eq!(up, t.to_vec());
    }

    #[test]
    fn single_dominator_takes_cheapest_dimension() {
        let mut p = PointStore::new(2);
        // Dominator close on dim 0, far on dim 1.
        let s = p.push(&[0.69, 0.2]);
        let t = [0.7, 0.8];
        let cost_fn = SumCost::reciprocal(2, 1e-2);
        let (cost, up) = upgrade_single(&p, &[s], &t, &cost_fn, &cfg());
        assert!(!dominated_by_any(&p, &[s], &up));
        // Beating on dim 0 needs a 0.01+ε change near v=0.7 (flat zone);
        // beating on dim 1 needs 0.6+ε near v=0.8. Dim 0 is far cheaper.
        assert!(up[0] < 0.69 && up[1] == t[1], "up = {up:?}");
        assert!(cost > 0.0);
    }

    #[test]
    fn multi_dimension_upgrade_can_beat_single() {
        // A staircase where squeezing between two skyline points is much
        // cheaper than overtaking everyone on one dimension.
        let mut p = PointStore::new(2);
        let sky: Vec<PointId> = vec![
            p.push(&[0.05, 0.60]),
            p.push(&[0.30, 0.30]),
            p.push(&[0.60, 0.05]),
        ];
        let t = [0.7, 0.7];
        let cost_fn = SumCost::reciprocal(2, 1e-2);
        let (cost, up) = upgrade_single(&p, &sky, &t, &cost_fn, &cfg());
        assert!(!dominated_by_any(&p, &sky, &up));
        // The single-dimension option must pay to get below 0.05 on one
        // axis: cost ≈ 1/(0.05+0.01) − 1/0.71 ≈ 15.3. The pair option
        // (e.g. below (0.30,0.30)... beating s2/s3 pair) is far cheaper.
        assert!(
            cost < 15.0,
            "expected multi-dimension candidate to win, cost = {cost}"
        );
        // Both coordinates changed.
        assert!(up[0] < t[0] && up[1] < t[1]);
    }

    #[test]
    fn cost_is_non_negative_and_matches_product_cost_delta() {
        let mut p = PointStore::new(3);
        let sky = vec![
            p.push(&[0.1, 0.5, 0.4]),
            p.push(&[0.4, 0.2, 0.3]),
            p.push(&[0.3, 0.4, 0.1]),
        ];
        let t = [0.6, 0.6, 0.6];
        let cost_fn = SumCost::reciprocal(3, 1e-2);
        let (cost, up) = upgrade_single(&p, &sky, &t, &cost_fn, &cfg());
        assert!(cost >= 0.0);
        let delta = cost_fn.product_cost(&up) - cost_fn.product_cost(&t);
        assert!((cost - delta).abs() < 1e-9);
    }

    #[test]
    fn extended_candidates_never_cost_more() {
        let mut p = PointStore::new(2);
        let sky = vec![
            p.push(&[0.1, 0.5]),
            p.push(&[0.3, 0.3]),
            p.push(&[0.5, 0.1]),
        ];
        let t = [0.9, 0.52];
        let cost_fn = SumCost::reciprocal(2, 1e-2);
        let base = upgrade_single(&p, &sky, &t, &cost_fn, &cfg()).0;
        let mut ext_cfg = cfg();
        ext_cfg.extended_candidates = true;
        let (ext, up) = upgrade_single(&p, &sky, &t, &cost_fn, &ext_cfg);
        assert!(ext <= base + 1e-12);
        assert!(!dominated_by_any(&p, &sky, &up));
    }

    #[test]
    fn duplicate_skyline_points_handled() {
        let mut p = PointStore::new(2);
        let sky = vec![p.push(&[0.3, 0.3]), p.push(&[0.3, 0.3])];
        let t = [0.5, 0.5];
        let cost_fn = SumCost::reciprocal(2, 1e-2);
        let (cost, up) = upgrade_single(&p, &sky, &t, &cost_fn, &cfg());
        assert!(cost > 0.0);
        assert!(!dominated_by_any(&p, &sky, &up));
    }

    /// The hoisted-sort path must return the exact bits of the
    /// per-product path — including when coordinates tie, which is
    /// where an unstable or differently-seeded sort would diverge.
    #[test]
    fn presorted_path_is_bit_identical_even_with_ties() {
        let mut rng = 0x5eed_cafe_u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for dims in [2usize, 3, 4] {
            // Coordinates drawn from a tiny discrete grid so ties on
            // every dimension are common.
            let mut p = PointStore::new(dims);
            let all: Vec<PointId> = (0..60)
                .map(|_| {
                    let coords: Vec<f64> =
                        (0..dims).map(|_| 0.1 + 0.1 * (next() % 4) as f64).collect();
                    p.push(&coords)
                })
                .collect();
            let orders = DimOrders::new(&p, &all);
            let cost_fn = SumCost::reciprocal(dims, 1e-3);
            for extended in [false, true] {
                let mut c = cfg();
                c.extended_candidates = extended;
                let mut scratch = UpgradeScratch::new();
                for _ in 0..40 {
                    let t: Vec<f64> = (0..dims)
                        .map(|_| 0.5 + 0.001 * (next() % 500) as f64)
                        .collect();
                    // Id-sorted dominator subset, as the batch path sees it.
                    let dominators: Vec<PointId> = all
                        .iter()
                        .copied()
                        .filter(|&s| skyup_geom::dominance::dominates(p.point(s), &t))
                        .collect();
                    let (seq_cost, seq_up) = upgrade_single(&p, &dominators, &t, &cost_fn, &c);
                    let pre_cost = upgrade_single_presorted_into(
                        &p,
                        &orders,
                        &dominators,
                        &t,
                        &cost_fn,
                        &c,
                        &mut scratch,
                    );
                    assert_eq!(seq_cost.to_bits(), pre_cost.to_bits());
                    assert_eq!(seq_up.len(), scratch.upgraded().len());
                    for (a, b) in seq_up.iter().zip(scratch.upgraded()) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
            }
        }
    }
}
