//! A bounded top-k collector for upgrade results (smallest cost wins),
//! plus the lock-free shared threshold cell parallel probing workers
//! publish their k-th-best cost through.

use crate::result::UpgradeResult;
use skyup_geom::OrderedF64;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap entry ordered by `(cost, product id)` only; the payload does not
/// participate in comparisons.
struct Entry {
    key: (OrderedF64, u32),
    result: Box<UpgradeResult>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Keeps the `k` lowest-cost [`UpgradeResult`]s seen so far, with
/// deterministic tie-breaking by product id.
pub struct TopK {
    k: usize,
    // Max-heap: the root is the current worst kept result, evicted when
    // something strictly better arrives.
    heap: BinaryHeap<Entry>,
}

impl TopK {
    /// Creates a collector for the best `k` results.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k requires k >= 1");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The current admission threshold: a result is useful only if its
    /// cost is below this (or the collector is not yet full). Probing
    /// loops use it to skip products early.
    pub fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |e| e.key.0.get())
        }
    }

    /// Whether `k` results have been collected.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Whether an offer with this `(cost, product id)` key would be
    /// kept. Probe loops use this gate to build the (allocating)
    /// [`UpgradeResult`] only for admissible products; `offer` makes the
    /// same decision, so `admits(c, id)` followed by `offer` never
    /// changes the collected set versus offering unconditionally.
    pub fn admits(&self, cost: f64, product: u32) -> bool {
        if self.heap.len() < self.k {
            return true;
        }
        match self.heap.peek() {
            Some(worst) => (OrderedF64::new(cost), product) < worst.key,
            None => true,
        }
    }

    /// Offers a result; it is kept iff it beats the current worst (ties
    /// favor the smaller product id, matching the deterministic ordering
    /// used across algorithms).
    pub fn offer(&mut self, result: UpgradeResult) {
        let entry = Entry {
            key: (OrderedF64::new(result.cost), result.product.0),
            result: Box::new(result),
        };
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry.key < worst.key {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Consumes the collector, returning results sorted by ascending
    /// `(cost, product id)`.
    pub fn into_sorted(self) -> Vec<UpgradeResult> {
        let mut items: Vec<Entry> = self.heap.into_vec();
        items.sort_by_key(|a| a.key);
        items.into_iter().map(|e| *e.result).collect()
    }
}

/// A lock-free cell holding the best (smallest) top-k admission
/// threshold published so far across parallel probing workers — the
/// global k-th-best upgrade cost, stored as `f64` bits in an atomic.
///
/// The cell is monotonically non-increasing: [`SharedThreshold::tighten`]
/// is a CAS-min, so a stale read only ever *over*-estimates the
/// threshold. That makes the strict `lower_bound > get()` prune sound at
/// any interleaving: the cell's value is always at least the final
/// global k-th-best cost (a threshold over a subset of the offers only
/// shrinks as more arrive), so a pruned product's cost strictly exceeds
/// the final threshold and could never have entered the top-k.
///
/// `Relaxed` ordering suffices: the cell carries a single monotone
/// value, correctness never depends on ordering against other memory,
/// and per-location coherence gives every reader some published value.
#[derive(Debug)]
pub struct SharedThreshold {
    bits: AtomicU64,
}

impl SharedThreshold {
    /// A fresh cell at `+∞` (nothing published: no pruning possible).
    pub fn new() -> Self {
        Self {
            bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// The current published threshold.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Publishes `value` if it improves (lowers) the cell; returns
    /// whether the cell changed. Non-finite or larger values are
    /// ignored, so the cell never loosens.
    pub fn tighten(&self, value: f64) -> bool {
        if value.is_nan() {
            return false;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if value >= f64::from_bits(cur) {
                return false;
            }
            match self.bits.compare_exchange_weak(
                cur,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Default for SharedThreshold {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyup_geom::PointId;

    fn result(id: u32, cost: f64) -> UpgradeResult {
        UpgradeResult {
            product: PointId(id),
            original: vec![0.0],
            upgraded: vec![0.0],
            cost,
        }
    }

    #[test]
    fn keeps_k_smallest() {
        let mut tk = TopK::new(3);
        for (id, c) in [(0, 5.0), (1, 1.0), (2, 4.0), (3, 2.0), (4, 3.0)] {
            tk.offer(result(id, c));
        }
        let out = tk.into_sorted();
        let costs: Vec<f64> = out.iter().map(|r| r.cost).collect();
        assert_eq!(costs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn threshold_tracks_worst_kept() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), f64::INFINITY);
        tk.offer(result(0, 9.0));
        assert_eq!(tk.threshold(), f64::INFINITY); // not full yet
        tk.offer(result(1, 4.0));
        assert_eq!(tk.threshold(), 9.0);
        tk.offer(result(2, 1.0));
        assert_eq!(tk.threshold(), 4.0);
    }

    #[test]
    fn ties_break_by_product_id() {
        let mut tk = TopK::new(2);
        tk.offer(result(5, 1.0));
        tk.offer(result(3, 1.0));
        tk.offer(result(9, 1.0));
        let out = tk.into_sorted();
        let ids: Vec<u32> = out.iter().map(|r| r.product.0).collect();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    fn full_collector_tie_breaks_by_smaller_id() {
        // With the collector full, an equal-cost offer displaces the
        // kept entry only when its product id is smaller.
        let mut tk = TopK::new(1);
        tk.offer(result(7, 2.0));
        tk.offer(result(9, 2.0)); // larger id, same cost: rejected
        tk.offer(result(4, 2.0)); // smaller id, same cost: replaces
        let out = tk.into_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].product.0, 4);
    }

    #[test]
    fn threshold_unchanged_by_rejected_ties() {
        let mut tk = TopK::new(2);
        tk.offer(result(1, 3.0));
        tk.offer(result(2, 5.0));
        assert_eq!(tk.threshold(), 5.0);
        // Same cost, larger id than the worst kept: no change.
        tk.offer(result(8, 5.0));
        assert_eq!(tk.threshold(), 5.0);
        assert!(tk.is_full());
        let ids: Vec<u32> = tk.into_sorted().iter().map(|r| r.product.0).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn fewer_results_than_k() {
        let mut tk = TopK::new(10);
        tk.offer(result(0, 2.0));
        assert_eq!(tk.into_sorted().len(), 1);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }

    #[test]
    fn admits_agrees_with_offer() {
        let mut tk = TopK::new(2);
        let offers = [
            (5u32, 3.0),
            (1, 5.0),
            (9, 4.0),
            (2, 5.0),
            (0, 3.0),
            (7, 3.0),
        ];
        for (id, c) in offers {
            let admitted = tk.admits(c, id);
            let before: Vec<(f64, u32)> = {
                let mut v: Vec<_> = tk.heap.iter().map(|e| (e.key.0.get(), e.key.1)).collect();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v
            };
            tk.offer(result(id, c));
            let after: Vec<(f64, u32)> = {
                let mut v: Vec<_> = tk.heap.iter().map(|e| (e.key.0.get(), e.key.1)).collect();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v
            };
            assert_eq!(admitted, before != after, "offer ({id}, {c})");
        }
    }

    #[test]
    fn shared_threshold_is_a_monotone_min_cell() {
        let cell = SharedThreshold::new();
        assert_eq!(cell.get(), f64::INFINITY);
        assert!(cell.tighten(5.0));
        assert_eq!(cell.get(), 5.0);
        assert!(!cell.tighten(7.0), "loosening must be ignored");
        assert!(!cell.tighten(5.0), "no-op publish reports no change");
        assert!(!cell.tighten(f64::NAN));
        assert_eq!(cell.get(), 5.0);
        assert!(cell.tighten(2.5));
        assert_eq!(cell.get(), 2.5);
    }

    #[test]
    fn shared_threshold_concurrent_tighten_keeps_global_min() {
        let cell = SharedThreshold::new();
        std::thread::scope(|s| {
            for w in 0..8u64 {
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        cell.tighten(((w * 1000 + i) % 997) as f64 + 1.0);
                    }
                });
            }
        });
        assert_eq!(cell.get(), 1.0);
    }
}
