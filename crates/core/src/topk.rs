//! A bounded top-k collector for upgrade results (smallest cost wins).

use crate::result::UpgradeResult;
use skyup_geom::OrderedF64;
use std::collections::BinaryHeap;

/// Heap entry ordered by `(cost, product id)` only; the payload does not
/// participate in comparisons.
struct Entry {
    key: (OrderedF64, u32),
    result: Box<UpgradeResult>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Keeps the `k` lowest-cost [`UpgradeResult`]s seen so far, with
/// deterministic tie-breaking by product id.
pub struct TopK {
    k: usize,
    // Max-heap: the root is the current worst kept result, evicted when
    // something strictly better arrives.
    heap: BinaryHeap<Entry>,
}

impl TopK {
    /// Creates a collector for the best `k` results.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k requires k >= 1");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The current admission threshold: a result is useful only if its
    /// cost is below this (or the collector is not yet full). Probing
    /// loops use it to skip products early.
    pub fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |e| e.key.0.get())
        }
    }

    /// Whether `k` results have been collected.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Offers a result; it is kept iff it beats the current worst (ties
    /// favor the smaller product id, matching the deterministic ordering
    /// used across algorithms).
    pub fn offer(&mut self, result: UpgradeResult) {
        let entry = Entry {
            key: (OrderedF64::new(result.cost), result.product.0),
            result: Box::new(result),
        };
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry.key < worst.key {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Consumes the collector, returning results sorted by ascending
    /// `(cost, product id)`.
    pub fn into_sorted(self) -> Vec<UpgradeResult> {
        let mut items: Vec<Entry> = self.heap.into_vec();
        items.sort_by_key(|a| a.key);
        items.into_iter().map(|e| *e.result).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyup_geom::PointId;

    fn result(id: u32, cost: f64) -> UpgradeResult {
        UpgradeResult {
            product: PointId(id),
            original: vec![0.0],
            upgraded: vec![0.0],
            cost,
        }
    }

    #[test]
    fn keeps_k_smallest() {
        let mut tk = TopK::new(3);
        for (id, c) in [(0, 5.0), (1, 1.0), (2, 4.0), (3, 2.0), (4, 3.0)] {
            tk.offer(result(id, c));
        }
        let out = tk.into_sorted();
        let costs: Vec<f64> = out.iter().map(|r| r.cost).collect();
        assert_eq!(costs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn threshold_tracks_worst_kept() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), f64::INFINITY);
        tk.offer(result(0, 9.0));
        assert_eq!(tk.threshold(), f64::INFINITY); // not full yet
        tk.offer(result(1, 4.0));
        assert_eq!(tk.threshold(), 9.0);
        tk.offer(result(2, 1.0));
        assert_eq!(tk.threshold(), 4.0);
    }

    #[test]
    fn ties_break_by_product_id() {
        let mut tk = TopK::new(2);
        tk.offer(result(5, 1.0));
        tk.offer(result(3, 1.0));
        tk.offer(result(9, 1.0));
        let out = tk.into_sorted();
        let ids: Vec<u32> = out.iter().map(|r| r.product.0).collect();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    fn full_collector_tie_breaks_by_smaller_id() {
        // With the collector full, an equal-cost offer displaces the
        // kept entry only when its product id is smaller.
        let mut tk = TopK::new(1);
        tk.offer(result(7, 2.0));
        tk.offer(result(9, 2.0)); // larger id, same cost: rejected
        tk.offer(result(4, 2.0)); // smaller id, same cost: replaces
        let out = tk.into_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].product.0, 4);
    }

    #[test]
    fn threshold_unchanged_by_rejected_ties() {
        let mut tk = TopK::new(2);
        tk.offer(result(1, 3.0));
        tk.offer(result(2, 5.0));
        assert_eq!(tk.threshold(), 5.0);
        // Same cost, larger id than the worst kept: no change.
        tk.offer(result(8, 5.0));
        assert_eq!(tk.threshold(), 5.0);
        assert!(tk.is_full());
        let ids: Vec<u32> = tk.into_sorted().iter().map(|r| r.product.0).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn fewer_results_than_k() {
        let mut tk = TopK::new(10);
        tk.offer(result(0, 2.0));
        assert_eq!(tk.into_sorted().len(), 1);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }
}
