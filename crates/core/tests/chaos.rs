//! Chaos and anytime-degradation suite for the guarded `try_*` APIs.
//!
//! Three families of properties:
//!
//! 1. **Anytime soundness** — under any node-visit / heap / deadline
//!    budget, every variant returns `Ok` with a tagged best-so-far
//!    answer whose per-product upgrades are *exact* (identical to the
//!    unlimited run's), never a panic and never a garbage result.
//! 2. **Fault containment** — deterministically injected worker panics
//!    are caught at the unwind barrier and surfaced as structured
//!    errors; injected stalls and spurious cancellations degrade to
//!    `Partial` instead of hanging or crashing.
//! 3. **Bit-identity** — with no limits, the `try_*` twins reproduce
//!    the historical infallible outputs exactly.

use skyup_core::cost::SumCost;
use skyup_core::join::join_topk;
use skyup_core::probing::improved_probing_topk_pruned;
use skyup_core::{
    basic_probing_topk, improved_probing_topk, improved_probing_topk_parallel,
    try_basic_probing_topk, try_improved_probing_topk, try_improved_probing_topk_parallel,
    try_improved_probing_topk_pruned, try_join_topk, try_upgrade_single, upgrade_single,
    AnytimeTopK, JoinUpgrader, SkyupError, UpgradeConfig, UpgradeResult,
};
use skyup_core::{CancellationToken, Completion, ExecutionLimits, Interrupt};
use skyup_data::synthetic::{paper_competitors, paper_products, Distribution};
use skyup_geom::{PointId, PointStore};
use skyup_obs::{Counter, FaultPlan, NullRecorder, QueryMetrics};
use skyup_rtree::{RTree, RTreeParams};
use std::time::Duration;

use skyup_core::join::LowerBound;

const DIMS: usize = 3;

fn setup(n_p: usize, n_t: usize, seed: u64) -> (PointStore, RTree, PointStore) {
    let p = paper_competitors(n_p, DIMS, Distribution::Independent, seed);
    let t = paper_products(n_t, DIMS, Distribution::Independent, seed ^ 0xfeed);
    let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
    (p, rp, t)
}

fn cost() -> SumCost {
    SumCost::reciprocal(DIMS, 1e-3)
}

/// The unlimited run's exact upgrade for every product, by id.
fn full_ranking(p: &PointStore, rp: &RTree, t: &PointStore) -> Vec<UpgradeResult> {
    improved_probing_topk(p, rp, t, t.len(), &cost(), &UpgradeConfig::default())
}

/// The exact top-k over the first `prefix` products of `T`, derived
/// from the full ranking — what a sequential anytime run interrupted
/// after `prefix` products must return.
fn expected_prefix_topk(full: &[UpgradeResult], prefix: usize, k: usize) -> Vec<UpgradeResult> {
    let mut sub: Vec<UpgradeResult> = full
        .iter()
        .filter(|r| (r.product.0 as usize) < prefix)
        .cloned()
        .collect();
    sub.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then(a.product.0.cmp(&b.product.0))
    });
    sub.truncate(k);
    sub
}

/// Asserts every returned result carries the exact unlimited upgrade
/// for its product and that the list is sorted the way `TopK` sorts.
fn assert_results_exact_and_sorted(out: &AnytimeTopK, full: &[UpgradeResult]) {
    for r in &out.results {
        let truth = full
            .iter()
            .find(|f| f.product == r.product)
            .expect("unknown product in partial answer");
        assert_eq!(r, truth, "partial answer altered a per-product upgrade");
    }
    assert!(out
        .results
        .windows(2)
        .all(|w| w[0].cost < w[1].cost
            || (w[0].cost == w[1].cost && w[0].product.0 < w[1].product.0)));
}

#[test]
fn budget_sweep_sequential_variants_degrade_to_exact_prefix_topk() {
    let (p, rp, t) = setup(1200, 150, 0xc0de);
    let k = 10;
    let cfg = UpgradeConfig::default();
    let full = full_ranking(&p, &rp, &t);
    let exact_basic = basic_probing_topk(&p, &rp, &t, k, &cost(), &cfg);
    let exact_improved = improved_probing_topk(&p, &rp, &t, k, &cost(), &cfg);

    let mut saw_partial = 0usize;
    for budget in [1u64, 3, 10, 30, 100, 300, 1000, 3000, 10_000, u64::MAX / 2] {
        let limits = ExecutionLimits::none().with_max_node_visits(budget);

        let basic =
            try_basic_probing_topk(&p, &rp, &t, k, &cost(), &cfg, &limits, &mut NullRecorder)
                .expect("budget exhaustion is a degradation, not an error");
        assert_results_exact_and_sorted(&basic, &full);
        match basic.completion {
            Completion::Exact => assert_eq!(basic.results, exact_basic),
            Completion::Partial(i) => {
                assert_eq!(i, Interrupt::NodeVisitBudget);
                assert_eq!(
                    basic.results,
                    expected_prefix_topk(&full, basic.evaluated, k)
                );
                saw_partial += 1;
            }
        }

        let improved =
            try_improved_probing_topk(&p, &rp, &t, k, &cost(), &cfg, &limits, &mut NullRecorder)
                .expect("budget exhaustion is a degradation, not an error");
        assert_results_exact_and_sorted(&improved, &full);
        match improved.completion {
            Completion::Exact => assert_eq!(improved.results, exact_improved),
            Completion::Partial(_) => {
                assert_eq!(
                    improved.results,
                    expected_prefix_topk(&full, improved.evaluated, k)
                );
                saw_partial += 1;
            }
        }

        let (pruned, stats) = try_improved_probing_topk_pruned(
            &p,
            &rp,
            &t,
            k,
            &cost(),
            &cfg,
            &limits,
            &mut NullRecorder,
        )
        .expect("budget exhaustion is a degradation, not an error");
        assert_results_exact_and_sorted(&pruned, &full);
        // Screened-out products are *processed* without being
        // *evaluated*; the prefix is their sum.
        let prefix = (stats.evaluated + stats.pruned) as usize;
        assert_eq!(pruned.results, expected_prefix_topk(&full, prefix, k));
        if !pruned.is_exact() {
            saw_partial += 1;
        }
    }
    // The sweep's small budgets must actually have exercised the
    // degradation path.
    assert!(saw_partial >= 6, "only {saw_partial} partial completions");
}

#[test]
fn budget_sweep_parallel_results_stay_exact_per_product() {
    let (p, rp, t) = setup(1000, 120, 0xbead);
    let k = 8;
    let cfg = UpgradeConfig::default();
    let full = full_ranking(&p, &rp, &t);
    let exact = improved_probing_topk(&p, &rp, &t, k, &cost(), &cfg);

    let mut saw_partial = false;
    for budget in [1u64, 20, 200, 2000, 20_000, u64::MAX / 2] {
        for threads in [1usize, 3, 8] {
            let limits = ExecutionLimits::none().with_max_node_visits(budget);
            let out = try_improved_probing_topk_parallel(
                &p,
                &rp,
                &t,
                k,
                &cost(),
                &cfg,
                threads,
                &limits,
                &mut NullRecorder,
            )
            .expect("budget exhaustion is a degradation, not an error");
            // The merged answer is the exact top-k over the union of
            // per-worker prefixes: every entry is an exact per-product
            // upgrade and the list is sorted. With an exhausted budget
            // of 1 it may be empty; it is never garbage.
            assert_results_exact_and_sorted(&out, &full);
            assert!(out.results.len() <= k.min(out.evaluated));
            if out.is_exact() {
                assert_eq!(out.results, exact, "threads={threads} budget={budget}");
            } else {
                saw_partial = true;
            }
        }
    }
    assert!(saw_partial);
}

#[test]
fn join_partial_is_exact_prefix_of_unlimited_emission() {
    let (p, rp, t) = setup(900, 80, 0x901e);
    let rt = RTree::bulk_load(&t, RTreeParams::with_max_entries(8));
    let cfg = UpgradeConfig::default();
    let unlimited: Vec<UpgradeResult> =
        JoinUpgrader::new(&p, &rp, &t, &rt, &cost(), cfg, LowerBound::Conservative).collect();
    assert_eq!(unlimited.len(), t.len());

    let mut saw_partial = false;
    for budget in [1u64, 5, 25, 125, 625, 5000, 50_000] {
        let limits = ExecutionLimits::none().with_max_node_visits(budget);
        let out = try_join_topk(
            &p,
            &rp,
            &t,
            &rt,
            t.len(),
            &cost(),
            cfg,
            LowerBound::Conservative,
            &limits,
            &mut NullRecorder,
        )
        .expect("budget exhaustion is a degradation, not an error");
        assert_eq!(
            out.results,
            unlimited[..out.results.len()],
            "budget={budget}: partial join output is not a prefix of the \
             unlimited emission sequence"
        );
        if out.is_exact() {
            assert_eq!(out.results.len(), unlimited.len());
        } else {
            saw_partial = true;
        }
    }
    assert!(saw_partial);

    // The heap budget degrades the same way, tagged with its own reason.
    let limits = ExecutionLimits::none().with_max_heap_entries(8);
    let out = try_join_topk(
        &p,
        &rp,
        &t,
        &rt,
        t.len(),
        &cost(),
        cfg,
        LowerBound::Conservative,
        &limits,
        &mut NullRecorder,
    )
    .unwrap();
    assert_eq!(out.completion, Completion::Partial(Interrupt::HeapBudget));
    assert_eq!(out.results, unlimited[..out.results.len()]);
}

#[test]
fn injected_worker_panic_is_contained_and_reported() {
    let (p, rp, t) = setup(1500, 160, 0xdead);
    let cfg = UpgradeConfig::default();
    // Panic at the 25th global node visit: with 4 workers racing, some
    // worker trips it early in the run.
    let limits = ExecutionLimits::none().with_faults(FaultPlan::new().panic_at_visit(25));
    let mut metrics = QueryMetrics::new();
    let err = try_improved_probing_topk_parallel(
        &p,
        &rp,
        &t,
        10,
        &cost(),
        &cfg,
        4,
        &limits,
        &mut metrics,
    )
    .expect_err("the injected panic must surface as an error");
    match err {
        SkyupError::WorkerPanicked {
            worker,
            ref message,
        } => {
            assert!(worker < 4, "worker index out of range: {worker}");
            assert!(
                message.contains("fault injection"),
                "panic payload lost: {message}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert!(err.to_string().contains("panicked"));
    assert_eq!(metrics.get(Counter::WorkerPanics), 1);
    // Containment: the surviving workers' output was dropped, nothing
    // was merged, and — crucially — the process is still alive to run
    // this assertion.
}

#[test]
fn injected_stall_burns_the_deadline_to_partial() {
    let (p, rp, t) = setup(600, 60, 0x51a1);
    let cfg = UpgradeConfig::default();
    let limits = ExecutionLimits::none()
        .with_deadline(Duration::from_millis(20))
        .with_faults(FaultPlan::new().stall_at_visit(1, Duration::from_millis(60)));
    let out = try_improved_probing_topk(&p, &rp, &t, 5, &cost(), &cfg, &limits, &mut NullRecorder)
        .expect("a stall is a degradation, not an error");
    assert_eq!(
        out.completion,
        Completion::Partial(Interrupt::DeadlineExceeded)
    );
    // The stall hit the very first traversal: nothing was evaluated.
    assert_eq!(out.evaluated, 0);
    assert!(out.results.is_empty());
}

#[test]
fn injected_cancellation_yields_partial_cancelled() {
    let (p, rp, t) = setup(600, 60, 0xca9c);
    let cfg = UpgradeConfig::default();
    let full = full_ranking(&p, &rp, &t);
    let limits = ExecutionLimits::none().with_faults(FaultPlan::new().cancel_at_visit(40));
    let mut metrics = QueryMetrics::new();
    let out = try_basic_probing_topk(&p, &rp, &t, 5, &cost(), &cfg, &limits, &mut metrics)
        .expect("cancellation is a degradation, not an error");
    assert_eq!(out.completion, Completion::Partial(Interrupt::Cancelled));
    assert_eq!(out.results, expected_prefix_topk(&full, out.evaluated, 5));
    assert_eq!(metrics.get(Counter::LimitInterrupts), 1);
    assert!(metrics.get(Counter::GuardedNodeVisits) >= 40);
}

#[test]
fn external_token_cancels_before_any_work() {
    let (p, rp, t) = setup(400, 40, 0x70ce);
    let token = CancellationToken::new();
    token.cancel();
    let limits = ExecutionLimits::none().with_token(token);
    let out = try_improved_probing_topk(
        &p,
        &rp,
        &t,
        5,
        &cost(),
        &UpgradeConfig::default(),
        &limits,
        &mut NullRecorder,
    )
    .unwrap();
    assert_eq!(out.completion, Completion::Partial(Interrupt::Cancelled));
    assert!(out.results.is_empty());
    assert_eq!(out.evaluated, 0);
}

#[test]
fn unlimited_try_twins_are_bit_identical_to_infallible() {
    let (p, rp, t) = setup(800, 90, 0xb17);
    let rt = RTree::bulk_load(&t, RTreeParams::with_max_entries(8));
    let cfg = UpgradeConfig::default();
    let k = 12;
    let none = ExecutionLimits::none();

    let basic =
        try_basic_probing_topk(&p, &rp, &t, k, &cost(), &cfg, &none, &mut NullRecorder).unwrap();
    assert!(basic.is_exact());
    assert_eq!(
        basic.results,
        basic_probing_topk(&p, &rp, &t, k, &cost(), &cfg)
    );

    let improved =
        try_improved_probing_topk(&p, &rp, &t, k, &cost(), &cfg, &none, &mut NullRecorder).unwrap();
    assert!(improved.is_exact());
    assert_eq!(
        improved.results,
        improved_probing_topk(&p, &rp, &t, k, &cost(), &cfg)
    );

    let (pruned, stats) =
        try_improved_probing_topk_pruned(&p, &rp, &t, k, &cost(), &cfg, &none, &mut NullRecorder)
            .unwrap();
    let (pruned_plain, stats_plain) = improved_probing_topk_pruned(&p, &rp, &t, k, &cost(), &cfg);
    assert!(pruned.is_exact());
    assert_eq!(pruned.results, pruned_plain);
    assert_eq!(stats, stats_plain);

    let parallel = try_improved_probing_topk_parallel(
        &p,
        &rp,
        &t,
        k,
        &cost(),
        &cfg,
        4,
        &none,
        &mut NullRecorder,
    )
    .unwrap();
    assert!(parallel.is_exact());
    assert_eq!(
        parallel.results,
        improved_probing_topk_parallel(&p, &rp, &t, k, &cost(), &cfg, 4)
    );

    let join = try_join_topk(
        &p,
        &rp,
        &t,
        &rt,
        k,
        &cost(),
        cfg,
        LowerBound::Aggressive,
        &none,
        &mut NullRecorder,
    )
    .unwrap();
    assert!(join.is_exact());
    assert_eq!(
        join.results,
        join_topk(&p, &rp, &t, &rt, k, &cost(), cfg, LowerBound::Aggressive)
    );
}

#[test]
fn invalid_inputs_are_structured_errors_not_panics() {
    let (p, rp, t) = setup(100, 10, 0xbad);
    let cfg = UpgradeConfig::default();
    let none = ExecutionLimits::none();

    // k == 0.
    assert!(matches!(
        try_improved_probing_topk(&p, &rp, &t, 0, &cost(), &cfg, &none, &mut NullRecorder),
        Err(SkyupError::InvalidConfig(_))
    ));

    // Empty competitor set.
    let empty = PointStore::new(DIMS);
    let r_empty = RTree::bulk_load(&empty, RTreeParams::default());
    assert!(matches!(
        try_basic_probing_topk(
            &empty,
            &r_empty,
            &t,
            3,
            &cost(),
            &cfg,
            &none,
            &mut NullRecorder
        ),
        Err(SkyupError::EmptyCompetitorSet)
    ));

    // Dimensionality mismatch.
    let t2 = PointStore::new(2);
    assert!(matches!(
        try_improved_probing_topk(&p, &rp, &t2, 3, &cost(), &cfg, &none, &mut NullRecorder),
        Err(SkyupError::DimensionMismatch {
            p_dims: 3,
            t_dims: 2
        })
    ));

    // Stale index.
    assert!(matches!(
        try_improved_probing_topk(&p, &r_empty, &t, 3, &cost(), &cfg, &none, &mut NullRecorder),
        Err(SkyupError::IndexMismatch { tree: "R_P", .. })
    ));

    // Zero worker threads.
    assert!(matches!(
        try_improved_probing_topk_parallel(
            &p,
            &rp,
            &t,
            3,
            &cost(),
            &cfg,
            0,
            &none,
            &mut NullRecorder
        ),
        Err(SkyupError::InvalidConfig(_))
    ));

    // Non-monotone cost function, caught by the sampler.
    use skyup_core::cost::AttributeCost;
    struct Increasing;
    impl AttributeCost for Increasing {
        fn eval(&self, v: f64) -> f64 {
            v
        }
    }
    let broken = SumCost::new(vec![
        Box::new(Increasing),
        Box::new(Increasing),
        Box::new(Increasing),
    ]);
    assert!(matches!(
        try_improved_probing_topk(&p, &rp, &t, 3, &broken, &cfg, &none, &mut NullRecorder),
        Err(SkyupError::NonMonotoneCost(_))
    ));

    // The join validates both indexes.
    let rt = RTree::bulk_load(&t, RTreeParams::default());
    assert!(matches!(
        try_join_topk(
            &p,
            &rp,
            &t,
            &r_empty,
            3,
            &cost(),
            cfg,
            LowerBound::Conservative,
            &none,
            &mut NullRecorder
        ),
        Err(SkyupError::IndexMismatch { tree: "R_T", .. })
    ));
    let _ = rt;
}

#[test]
fn try_upgrade_single_checks_the_contract() {
    let mut p = PointStore::new(2);
    let s1 = p.push(&[0.2, 0.6]);
    let s2 = p.push(&[0.5, 0.3]);
    let far = p.push(&[0.9, 0.9]); // does not dominate t
    let t = [0.7, 0.8];
    let cost2 = SumCost::reciprocal(2, 1e-2);
    let cfg = UpgradeConfig::default();

    // Happy path matches the panicking entry point exactly.
    let fallible = try_upgrade_single(&p, &[s1, s2], &t, &cost2, &cfg).unwrap();
    assert_eq!(fallible, upgrade_single(&p, &[s1, s2], &t, &cost2, &cfg));

    // Dimensionality mismatch.
    assert!(matches!(
        try_upgrade_single(&p, &[s1], &[0.7, 0.8, 0.9], &cost2, &cfg),
        Err(SkyupError::DimensionMismatch { .. })
    ));

    // Non-finite product coordinate.
    let err = try_upgrade_single(&p, &[s1], &[f64::NAN, 0.8], &cost2, &cfg).unwrap_err();
    assert!(matches!(err, SkyupError::InvalidInput(_)));
    assert!(err.to_string().contains("finite"));

    // Out-of-bounds skyline id.
    assert!(matches!(
        try_upgrade_single(&p, &[PointId(99)], &t, &cost2, &cfg),
        Err(SkyupError::InvalidInput(_))
    ));

    // A "skyline" point that does not dominate the product.
    let err = try_upgrade_single(&p, &[far], &t, &cost2, &cfg).unwrap_err();
    assert!(err.to_string().contains("does not dominate"));
}

#[test]
fn tiny_deadline_never_panics_and_tags_partial() {
    let (p, rp, t) = setup(500, 50, 0x717e);
    let rt = RTree::bulk_load(&t, RTreeParams::with_max_entries(8));
    let cfg = UpgradeConfig::default();
    let limits = ExecutionLimits::none().with_deadline(Duration::ZERO);

    let b =
        try_basic_probing_topk(&p, &rp, &t, 5, &cost(), &cfg, &limits, &mut NullRecorder).unwrap();
    let i = try_improved_probing_topk(&p, &rp, &t, 5, &cost(), &cfg, &limits, &mut NullRecorder)
        .unwrap();
    let (pr, _) =
        try_improved_probing_topk_pruned(&p, &rp, &t, 5, &cost(), &cfg, &limits, &mut NullRecorder)
            .unwrap();
    let pa = try_improved_probing_topk_parallel(
        &p,
        &rp,
        &t,
        5,
        &cost(),
        &cfg,
        3,
        &limits,
        &mut NullRecorder,
    )
    .unwrap();
    let j = try_join_topk(
        &p,
        &rp,
        &t,
        &rt,
        5,
        &cost(),
        cfg,
        LowerBound::Conservative,
        &limits,
        &mut NullRecorder,
    )
    .unwrap();
    for out in [&b, &i, &pr, &pa, &j] {
        assert_eq!(
            out.completion,
            Completion::Partial(Interrupt::DeadlineExceeded)
        );
        assert!(out.results.is_empty());
    }
}
