//! Allocation accounting for the probe scheduler: after warmup the hot
//! loop must not allocate per product. Per-worker scratches
//! (`SkylineScratch`, `UpgradeScratch`), the hoisted screen buffer, and
//! the `TopK::admits` gate mean the only per-run allocations left are
//! O(1) setup (probe order, bounds, worker spawns, scratch growth) plus
//! the O(k·log) results that are actually kept — so the allocation
//! *count* must grow far slower than `|T|`.
//!
//! This file holds a single test: the counting global allocator sees
//! every allocation in the process, so concurrent tests would pollute
//! the measurement.

use skyup_core::cost::{AttributeCost, LinearCost, SumCost};
use skyup_core::{improved_probing_topk_scheduled, ProbeStrategy, UpgradeConfig};
use skyup_geom::PointStore;
use skyup_rtree::{RTree, RTreeParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

fn pseudo_random_store(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> PointStore {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut s = PointStore::new(dims);
    for _ in 0..n {
        let row: Vec<f64> = (0..dims).map(|_| lo + (hi - lo) * next()).collect();
        s.push(&row);
    }
    s
}

fn linear_cost(dims: usize) -> SumCost {
    SumCost::new(
        (0..dims)
            .map(|_| Box::new(LinearCost::new(2.0, 1.0)) as Box<dyn AttributeCost>)
            .collect(),
    )
}

#[test]
fn probe_loop_allocations_do_not_scale_with_t() {
    let dims = 3;
    let p = pseudo_random_store(600, dims, 0.0, 1.0, 0x71);
    let t_small = pseudo_random_store(100, dims, 0.3, 1.3, 0x72);
    let t_big = pseudo_random_store(400, dims, 0.3, 1.3, 0x72);
    let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
    let cost = linear_cost(dims);
    let cfg = UpgradeConfig::default();
    let k = 5;

    for (strategy, threads) in [
        (ProbeStrategy::WorkStealing, 1),
        (ProbeStrategy::WorkStealing, 2),
        (ProbeStrategy::BoundSorted, 1),
        (ProbeStrategy::BoundSorted, 2),
    ] {
        let run = |t: &PointStore| {
            improved_probing_topk_scheduled(&p, &rp, t, k, &cost, &cfg, threads, strategy)
        };
        // Warmup: populate any lazily-grown shared state (thread stacks
        // cached by the OS, allocator arenas, ...).
        let _ = run(&t_small);
        let _ = run(&t_big);

        let before_small = alloc_events();
        let _ = run(&t_small);
        let cost_small = alloc_events() - before_small;

        let before_big = alloc_events();
        let _ = run(&t_big);
        let cost_big = alloc_events() - before_big;

        // 300 extra products; a per-product allocation anywhere in the
        // loop would show up as >= 300 extra events. The real delta is
        // O(1) setup plus scratch growth plus the few admitted results.
        let delta = cost_big.saturating_sub(cost_small);
        let extra_products = (t_big.len() - t_small.len()) as u64;
        assert!(
            delta < extra_products / 2,
            "{strategy:?} threads={threads}: allocation count scales with |T|: \
             {cost_small} events for |T|={}, {cost_big} for |T|={} (delta {delta})",
            t_small.len(),
            t_big.len(),
        );
    }
}
