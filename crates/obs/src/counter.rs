//! The closed vocabulary of counters and phases.

/// Named counters covering the paper's cost model (Section IV measures
/// node accesses, dominance tests, and pruning effectiveness across the
/// probing and join algorithms) plus the library's own extensions.
///
/// The set is closed on purpose: a fixed `#[repr(usize)]` enum indexes a
/// flat array in [`crate::QueryMetrics`], so recording is one add with
/// no hashing or allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Point-vs-point dominance tests (`dominates` evaluations) in the
    /// skyline and screening code paths.
    DominanceTests,
    /// R-tree nodes read during traversals — the paper's node/page
    /// access metric.
    RtreeNodeAccesses,
    /// R-tree entries (child node refs or leaf points) examined during
    /// traversals.
    RtreeEntryAccesses,
    /// Points returned by ADR range queries before the exact dominance
    /// filter (basic probing's candidate volume).
    AdrCandidates,
    /// Skyline points retained across skyline computations.
    SkylinePointsRetained,
    /// Lower-bound evaluations (`LBC` list bounds, NLB/CLB/ALB, and the
    /// pruned-probing screen).
    LowerBoundEvals,
    /// Products short-circuited by the top-k threshold before full
    /// evaluation (pruned probing's screen hits).
    ThresholdPrunes,
    /// Products fully evaluated (dominator skyline + Algorithm 1).
    ProductsEvaluated,
    /// Pushes onto a best-first priority queue (join heap).
    HeapPushes,
    /// Pops from a best-first priority queue (join heap).
    HeapPops,
    /// `R_T` nodes expanded by the join (Heuristic 1 or the all-points
    /// fallback).
    TNodesExpanded,
    /// `R_P` nodes expanded out of join lists (Heuristic 2).
    PNodesExpanded,
    /// Join-list entries dropped by the mutual-dominance check.
    JlEntriesPruned,
    /// Exact upgrades computed with Algorithm 1.
    ExactUpgrades,
    /// Results emitted to the caller.
    ResultsEmitted,
    /// R-tree node visits charged against an execution budget (guarded
    /// traversals only; unlimited guards still count their own visits).
    GuardedNodeVisits,
    /// Queries cut short by an execution limit (deadline, budget, or
    /// cancellation) — each partial completion bumps this once.
    LimitInterrupts,
    /// Worker panics contained by the parallel prober's unwind barrier.
    WorkerPanics,
    /// Probe tasks claimed dynamically from the shared work-stealing
    /// counter (zero under static chunking).
    StealEvents,
    /// Successful CAS improvements of the shared top-k threshold cell
    /// published by parallel probing workers.
    SharedThresholdUpdates,
    /// 64-point blocks scanned by the columnar dominance kernel.
    KernelBlockScans,
    /// 64-point blocks skipped wholesale by the kernel's per-block zone
    /// maps: the block's min corner proved it could hold no dominator
    /// (equivalently, its MBR misses the target's ADR), so not one of
    /// its lanes was compared. On full enumerating scans the exact
    /// conservation law `KernelBlockScans + KernelBlocksSkipped ==
    /// scans × total blocks` holds.
    KernelBlocksSkipped,
    /// Per-product answers served from the dominance-aware result cache
    /// without recomputation (`skyup-serve`).
    CacheHit,
    /// Per-product answers that missed the result cache and were
    /// computed against the current snapshot (`skyup-serve`).
    CacheMiss,
    /// Cache entries evicted by selective invalidation after a
    /// competitor mutation (`skyup-serve`).
    CacheEvictions,
    /// Epoch snapshots published by the serve writer (one per applied
    /// mutation batch or index rebuild).
    EpochSwaps,
    /// Requests shed by the serve front-end instead of queued (bounded
    /// queue full, or the request deadline had already passed).
    RequestsShed,
    /// Request batches executed by the serve batch pipeline (each batch
    /// shares one snapshot, one skyline view, and one columnar kernel).
    BatchesExecuted,
    /// Requests answered through the batch pipeline (summed over
    /// batches; `BatchedRequests / BatchesExecuted` is the mean batch
    /// width).
    BatchedRequests,
    /// Batch items whose dominator set was derived from a memoized
    /// ADR-containing superset instead of a full skyline scan.
    DominatorMemoHits,
    /// Completed request traces recorded into the serve flight recorder
    /// (one per request that reached the telemetry layer, shed or not).
    TracesRecorded,
    /// Traces that also entered the slow-query log: latency over the
    /// `--slow-ms` threshold, shed, or partial completion.
    SlowQueries,
    /// Mutation records appended to the write-ahead log, before the
    /// epoch was published or the ack sent (`skyup-serve --wal`).
    WalAppends,
    /// Bytes written to the write-ahead log (record headers included).
    WalBytes,
    /// `fsync`/`fdatasync` calls issued on the write-ahead log file
    /// (one per append under `--fsync always`; every Nth append under
    /// `--fsync interval:N`; zero under `--fsync never`).
    WalFsyncs,
    /// Durable checkpoints written (atomic temp + rename + dir-fsync
    /// snapshot of the live competitor set, then WAL truncation).
    CheckpointsWritten,
    /// WAL records replayed into the engine during crash recovery.
    RecoveryReplayedRecords,
    /// Torn WAL tails discarded during recovery: an incomplete or
    /// checksum-failed final record left by a crash mid-append (never
    /// an abort — recovery keeps the longest valid prefix).
    TornTailTruncated,
    /// Per-shard probes issued by the scatter phase of a coordinated
    /// query (one per reachable shard per admitted request).
    ScatterProbes,
    /// Distinct competitor points gathered from shard probe responses
    /// (union size after cross-shard cid dedup, before the merge
    /// dominance filter).
    GatherPoints,
    /// Gathered union points discarded by the coordinator's merge
    /// dominance filter (`gather_points - merge_dropped` points feed
    /// the upgrade join).
    MergeDropped,
    /// Stage acknowledgements collected during two-phase epoch
    /// publishes (a committed publish acks once per shard, so
    /// `stage_acks == epoch_flips * shards`).
    StageAcks,
    /// Two-phase epoch publishes committed by the coordinator (the
    /// flip round after all shards acked the staged epoch).
    EpochFlips,
    /// Rows accepted by the `skyup ingest` loader into a point store
    /// (after schema inference, column selection, and the finite-value
    /// checks all passed for the row).
    RowsIngested,
    /// Rows the ingest path refused: malformed cells, ragged column
    /// counts, non-finite values, or (in profiling mode) null cells
    /// that make the row unusable as a point.
    RowsRejected,
    /// Scenario files executed by the `skyup test --suite` harness
    /// (skipped scenarios are not counted).
    ScenariosRun,
}

impl Counter {
    /// Every counter, in declaration (= array) order.
    pub const ALL: [Counter; 46] = [
        Counter::DominanceTests,
        Counter::RtreeNodeAccesses,
        Counter::RtreeEntryAccesses,
        Counter::AdrCandidates,
        Counter::SkylinePointsRetained,
        Counter::LowerBoundEvals,
        Counter::ThresholdPrunes,
        Counter::ProductsEvaluated,
        Counter::HeapPushes,
        Counter::HeapPops,
        Counter::TNodesExpanded,
        Counter::PNodesExpanded,
        Counter::JlEntriesPruned,
        Counter::ExactUpgrades,
        Counter::ResultsEmitted,
        Counter::GuardedNodeVisits,
        Counter::LimitInterrupts,
        Counter::WorkerPanics,
        Counter::StealEvents,
        Counter::SharedThresholdUpdates,
        Counter::KernelBlockScans,
        Counter::KernelBlocksSkipped,
        Counter::CacheHit,
        Counter::CacheMiss,
        Counter::CacheEvictions,
        Counter::EpochSwaps,
        Counter::RequestsShed,
        Counter::BatchesExecuted,
        Counter::BatchedRequests,
        Counter::DominatorMemoHits,
        Counter::TracesRecorded,
        Counter::SlowQueries,
        Counter::WalAppends,
        Counter::WalBytes,
        Counter::WalFsyncs,
        Counter::CheckpointsWritten,
        Counter::RecoveryReplayedRecords,
        Counter::TornTailTruncated,
        Counter::ScatterProbes,
        Counter::GatherPoints,
        Counter::MergeDropped,
        Counter::StageAcks,
        Counter::EpochFlips,
        Counter::RowsIngested,
        Counter::RowsRejected,
        Counter::ScenariosRun,
    ];

    /// Number of counters (the metrics array length).
    pub const COUNT: usize = Self::ALL.len();

    /// The stable snake_case name used as the JSON key and text label.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DominanceTests => "dominance_tests",
            Counter::RtreeNodeAccesses => "rtree_node_accesses",
            Counter::RtreeEntryAccesses => "rtree_entry_accesses",
            Counter::AdrCandidates => "adr_candidates",
            Counter::SkylinePointsRetained => "skyline_points_retained",
            Counter::LowerBoundEvals => "lower_bound_evals",
            Counter::ThresholdPrunes => "threshold_prunes",
            Counter::ProductsEvaluated => "products_evaluated",
            Counter::HeapPushes => "heap_pushes",
            Counter::HeapPops => "heap_pops",
            Counter::TNodesExpanded => "t_nodes_expanded",
            Counter::PNodesExpanded => "p_nodes_expanded",
            Counter::JlEntriesPruned => "jl_entries_pruned",
            Counter::ExactUpgrades => "exact_upgrades",
            Counter::ResultsEmitted => "results_emitted",
            Counter::GuardedNodeVisits => "guarded_node_visits",
            Counter::LimitInterrupts => "limit_interrupts",
            Counter::WorkerPanics => "worker_panics",
            Counter::StealEvents => "steal_events",
            Counter::SharedThresholdUpdates => "shared_threshold_updates",
            Counter::KernelBlockScans => "kernel_block_scans",
            Counter::KernelBlocksSkipped => "kernel_blocks_skipped",
            Counter::CacheHit => "cache_hit",
            Counter::CacheMiss => "cache_miss",
            Counter::CacheEvictions => "cache_evictions",
            Counter::EpochSwaps => "epoch_swaps",
            Counter::RequestsShed => "requests_shed",
            Counter::BatchesExecuted => "batches_executed",
            Counter::BatchedRequests => "batched_requests",
            Counter::DominatorMemoHits => "dominator_memo_hits",
            Counter::TracesRecorded => "traces_recorded",
            Counter::SlowQueries => "slow_queries",
            Counter::WalAppends => "wal_appends",
            Counter::WalBytes => "wal_bytes",
            Counter::WalFsyncs => "wal_fsyncs",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::RecoveryReplayedRecords => "recovery_replayed_records",
            Counter::TornTailTruncated => "torn_tail_truncated",
            Counter::ScatterProbes => "scatter_probes",
            Counter::GatherPoints => "gather_points",
            Counter::MergeDropped => "merge_dropped",
            Counter::StageAcks => "stage_acks",
            Counter::EpochFlips => "epoch_flips",
            Counter::RowsIngested => "rows_ingested",
            Counter::RowsRejected => "rows_rejected",
            Counter::ScenariosRun => "scenarios_run",
        }
    }

    /// Array slot of this counter.
    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// The coarse query phases timed by span recorders.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// R-tree construction (bulk load or insertion build).
    IndexBuild,
    /// The per-product probing loop (basic, improved, parallel, or
    /// pruned).
    ProbeLoop,
    /// `getDominatingSky` traversals (Algorithm 3) and the basic
    /// algorithm's range-query + skyline replacement for it.
    DominatingSky,
    /// Join heap processing: target/join-list expansion and product
    /// resolution (Algorithm 4).
    JoinExpansion,
    /// Algorithm 1 exact upgrades (the per-product optimization step).
    Upgrade,
    /// Probe-order preparation for the bound-sorted scheduler: screen
    /// lower-bound evaluation over `T` plus the ascending sort.
    BoundSort,
    /// Batch assembly in `skyup-serve`: draining the admission window,
    /// grouping same-epoch requests, and flattening products into the
    /// shared work list.
    BatchAssemble,
}

impl Phase {
    /// Every phase, in declaration (= array) order.
    pub const ALL: [Phase; 7] = [
        Phase::IndexBuild,
        Phase::ProbeLoop,
        Phase::DominatingSky,
        Phase::JoinExpansion,
        Phase::Upgrade,
        Phase::BoundSort,
        Phase::BatchAssemble,
    ];

    /// Number of phases (the metrics array length).
    pub const COUNT: usize = Self::ALL.len();

    /// The stable snake_case name used as the JSON key and text label.
    pub fn name(self) -> &'static str {
        match self {
            Phase::IndexBuild => "index_build",
            Phase::ProbeLoop => "probe_loop",
            Phase::DominatingSky => "dominating_sky",
            Phase::JoinExpansion => "join_expansion",
            Phase::Upgrade => "upgrade",
            Phase::BoundSort => "bound_sort",
            Phase::BatchAssemble => "batch_assemble",
        }
    }

    /// Array slot of this phase.
    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for c in Counter::ALL {
            assert!(seen.insert(c.name()), "duplicate counter name {}", c.name());
        }
        let mut seen = std::collections::HashSet::new();
        for p in Phase::ALL {
            assert!(seen.insert(p.name()), "duplicate phase name {}", p.name());
        }
    }

    #[test]
    fn indices_match_declaration_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
