//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] rides along inside [`crate::ExecutionLimits`] and is
//! evaluated by [`crate::ExecGuard::visit_node`] against the *shared*
//! visit count, so a fault scheduled at visit `N` fires exactly once
//! per query, at a reproducible point of the traversal (sequentially
//! deterministic; under parallel probing, at the Nth global visit in
//! whatever interleaving occurs).
//!
//! Three failure modes cover the interesting containment stories:
//!
//! * `panic_at_visit` — simulates a bug inside a traversal; the
//!   parallel prober must contain it via `catch_unwind` and surface a
//!   structured error instead of aborting the process.
//! * `stall_at_visit` — simulates a slow disk/lock by sleeping inside
//!   the traversal, burning the wall-clock deadline so the query comes
//!   back `Partial(DeadlineExceeded)`.
//! * `cancel_at_visit` — simulates a spurious external cancellation by
//!   tripping the query's own token mid-traversal.

use std::time::Duration;

use crate::exec::CancellationToken;

/// A deterministic schedule of injected faults, keyed by the shared
/// node-visit count of the query's guard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    panic_at_visit: Option<u64>,
    stall_at_visit: Option<(u64, Duration)>,
    cancel_at_visit: Option<u64>,
}

impl FaultPlan {
    /// An empty plan: injects nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Panics (with a `"fault injection"` message) at the `n`-th
    /// guarded node visit.
    pub fn panic_at_visit(mut self, n: u64) -> Self {
        self.panic_at_visit = Some(n);
        self
    }

    /// Sleeps for `pause` at the `n`-th guarded node visit, simulating
    /// a stall that burns the deadline.
    pub fn stall_at_visit(mut self, n: u64, pause: Duration) -> Self {
        self.stall_at_visit = Some((n, pause));
        self
    }

    /// Cancels the query's own token at the `n`-th guarded node visit.
    pub fn cancel_at_visit(mut self, n: u64) -> Self {
        self.cancel_at_visit = Some(n);
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Fires whichever faults are scheduled for this visit. Called by
    /// the guard with the post-increment shared visit count.
    pub(crate) fn fire(&self, visit: u64, token: &CancellationToken) {
        if let Some((at, pause)) = self.stall_at_visit {
            if at == visit {
                std::thread::sleep(pause);
            }
        }
        if self.cancel_at_visit == Some(visit) {
            token.cancel();
        }
        if self.panic_at_visit == Some(visit) {
            panic!("fault injection: panic at node visit {visit}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecutionLimits, Interrupt};

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let token = CancellationToken::new();
        for visit in 1..100 {
            plan.fire(visit, &token);
        }
        assert!(!token.is_cancelled());
    }

    #[test]
    #[should_panic(expected = "fault injection")]
    fn panic_fault_fires_at_exact_visit() {
        let mut g = ExecutionLimits::none()
            .with_faults(FaultPlan::new().panic_at_visit(3))
            .start();
        assert!(g.visit_node().is_ok());
        assert!(g.visit_node().is_ok());
        let _ = g.visit_node(); // third visit panics
    }

    #[test]
    fn cancel_fault_trips_guard() {
        let mut g = ExecutionLimits::none()
            .with_faults(FaultPlan::new().cancel_at_visit(2))
            .start();
        assert!(g.visit_node().is_ok());
        assert_eq!(g.visit_node(), Err(Interrupt::Cancelled));
        assert_eq!(g.interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn stall_fault_burns_deadline() {
        let mut g = ExecutionLimits::none()
            .with_deadline(Duration::from_millis(20))
            .with_faults(FaultPlan::new().stall_at_visit(1, Duration::from_millis(40)))
            .start();
        assert_eq!(g.visit_node(), Err(Interrupt::DeadlineExceeded));
    }
}
