//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] rides along inside [`crate::ExecutionLimits`] and is
//! evaluated by [`crate::ExecGuard::visit_node`] against the *shared*
//! visit count, so a fault scheduled at visit `N` fires exactly once
//! per query, at a reproducible point of the traversal (sequentially
//! deterministic; under parallel probing, at the Nth global visit in
//! whatever interleaving occurs).
//!
//! Three failure modes cover the interesting containment stories:
//!
//! * `panic_at_visit` — simulates a bug inside a traversal; the
//!   parallel prober must contain it via `catch_unwind` and surface a
//!   structured error instead of aborting the process.
//! * `stall_at_visit` — simulates a slow disk/lock by sleeping inside
//!   the traversal, burning the wall-clock deadline so the query comes
//!   back `Partial(DeadlineExceeded)`.
//! * `cancel_at_visit` — simulates a spurious external cancellation by
//!   tripping the query's own token mid-traversal.

use std::time::Duration;

use crate::exec::CancellationToken;

/// A deterministic schedule of injected faults, keyed by the shared
/// node-visit count of the query's guard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    panic_at_visit: Option<u64>,
    stall_at_visit: Option<(u64, Duration)>,
    cancel_at_visit: Option<u64>,
}

impl FaultPlan {
    /// An empty plan: injects nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Panics (with a `"fault injection"` message) at the `n`-th
    /// guarded node visit.
    pub fn panic_at_visit(mut self, n: u64) -> Self {
        self.panic_at_visit = Some(n);
        self
    }

    /// Sleeps for `pause` at the `n`-th guarded node visit, simulating
    /// a stall that burns the deadline.
    pub fn stall_at_visit(mut self, n: u64, pause: Duration) -> Self {
        self.stall_at_visit = Some((n, pause));
        self
    }

    /// Cancels the query's own token at the `n`-th guarded node visit.
    pub fn cancel_at_visit(mut self, n: u64) -> Self {
        self.cancel_at_visit = Some(n);
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Fires whichever faults are scheduled for this visit. Called by
    /// the guard with the post-increment shared visit count.
    pub(crate) fn fire(&self, visit: u64, token: &CancellationToken) {
        if let Some((at, pause)) = self.stall_at_visit {
            if at == visit {
                std::thread::sleep(pause);
            }
        }
        if self.cancel_at_visit == Some(visit) {
            token.cancel();
        }
        if self.panic_at_visit == Some(visit) {
            panic!("fault injection: panic at node visit {visit}");
        }
    }
}

/// A deterministic schedule of injected durability I/O failures, keyed
/// by 1-based operation counts maintained by the consumer (the serve
/// WAL counts its own writes and syncs and consults the plan before
/// touching the file).
///
/// Unlike [`FaultPlan`], which fires inside query traversals, an
/// `IoFaultPlan` simulates the disk failing underneath the write path —
/// `ENOSPC` on the Nth write, or an fsync error on the Nth sync. The
/// engine must respond by degrading to read-only with a structured
/// error, never by panicking a worker or corrupting published state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    fail_write_at: Option<u64>,
    fail_sync_at: Option<u64>,
}

impl IoFaultPlan {
    /// An empty plan: injects nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fails the `n`-th write (1-based) with a simulated disk-full
    /// error.
    pub fn fail_write_at(mut self, n: u64) -> Self {
        self.fail_write_at = Some(n);
        self
    }

    /// Fails the `n`-th sync (1-based) with a simulated fsync error.
    pub fn fail_sync_at(mut self, n: u64) -> Self {
        self.fail_sync_at = Some(n);
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Consults the plan before the `n`-th write (1-based count kept by
    /// the caller). `Err` simulates the write failing with disk-full.
    pub fn check_write(&self, n: u64) -> Result<(), &'static str> {
        if self.fail_write_at == Some(n) {
            Err("injected fault: simulated disk full on write")
        } else {
            Ok(())
        }
    }

    /// Consults the plan before the `n`-th sync (1-based count kept by
    /// the caller). `Err` simulates `fsync` reporting an I/O error.
    pub fn check_sync(&self, n: u64) -> Result<(), &'static str> {
        if self.fail_sync_at == Some(n) {
            Err("injected fault: simulated fsync failure")
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecutionLimits, Interrupt};

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let token = CancellationToken::new();
        for visit in 1..100 {
            plan.fire(visit, &token);
        }
        assert!(!token.is_cancelled());
    }

    #[test]
    #[should_panic(expected = "fault injection")]
    fn panic_fault_fires_at_exact_visit() {
        let mut g = ExecutionLimits::none()
            .with_faults(FaultPlan::new().panic_at_visit(3))
            .start();
        assert!(g.visit_node().is_ok());
        assert!(g.visit_node().is_ok());
        let _ = g.visit_node(); // third visit panics
    }

    #[test]
    fn cancel_fault_trips_guard() {
        let mut g = ExecutionLimits::none()
            .with_faults(FaultPlan::new().cancel_at_visit(2))
            .start();
        assert!(g.visit_node().is_ok());
        assert_eq!(g.visit_node(), Err(Interrupt::Cancelled));
        assert_eq!(g.interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn io_fault_plan_fires_at_exact_counts() {
        let plan = IoFaultPlan::new().fail_write_at(3).fail_sync_at(2);
        assert!(!plan.is_empty());
        assert!(plan.check_write(1).is_ok());
        assert!(plan.check_write(2).is_ok());
        assert!(plan.check_write(3).is_err());
        assert!(plan.check_write(4).is_ok());
        assert!(plan.check_sync(1).is_ok());
        assert!(plan.check_sync(2).is_err());
        assert!(plan.check_sync(3).is_ok());

        let inert = IoFaultPlan::new();
        assert!(inert.is_empty());
        for n in 1..50 {
            assert!(inert.check_write(n).is_ok());
            assert!(inert.check_sync(n).is_ok());
        }
    }

    #[test]
    fn stall_fault_burns_deadline() {
        let mut g = ExecutionLimits::none()
            .with_deadline(Duration::from_millis(20))
            .with_faults(FaultPlan::new().stall_at_visit(1, Duration::from_millis(40)))
            .start();
        assert_eq!(g.visit_node(), Err(Interrupt::DeadlineExceeded));
    }
}
