//! A minimal hand-rolled JSON value: renderer and parser.
//!
//! The offline build cannot pull `serde`, and the instrumentation layer
//! needs both to *emit* reports (`--stats=json`, baseline snapshots)
//! and to *read them back* (round-trip tests, future diffing tools).
//! This module implements the JSON subset those uses need: objects,
//! arrays, strings with escapes, finite numbers, booleans, and null.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys keep insertion order via a `Vec`, so
/// rendered reports are deterministic and diff-friendly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Integers within `u64` render without a decimal
    /// point.
    Num(f64),
    /// An exact unsigned integer. Unlike [`Json::Num`], values above
    /// 2^53 render without precision loss; use this for ids, epochs,
    /// and counters. (The parser only produces [`Json::Num`]; exact
    /// round-tripping goes through [`Json::as_u64`].)
    Uint(u64),
    /// A string (stored unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Uint(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            Json::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object fields as a sorted map (for order-insensitive comparison).
    pub fn as_map(&self) -> Option<BTreeMap<&str, &Json>> {
        match self {
            Json::Obj(fields) => Some(fields.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty-printed JSON with two-space indentation. The
    /// first line of the output is `{` (or the value itself for
    /// scalars), which report consumers rely on to locate the block.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Uint(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON cannot represent {n}");
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        // Integral values render without a trailing `.0`.
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (surrounding whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our emitter;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Num(42.0)),
            ("-7", Json::Num(-7.0)),
            ("2.5", Json::Num(2.5)),
            ("1e3", Json::Num(1000.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
            assert_eq!(parse(&value.render()).unwrap(), value);
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = Json::obj(vec![
            ("name", Json::Str("skyup".into())),
            (
                "counters",
                Json::obj(vec![("a", Json::Num(1.0)), ("b", Json::Num(0.0))]),
            ),
            (
                "list",
                Json::Arr(vec![Json::Num(1.0), Json::Bool(false), Json::Null]),
            ),
        ]);
        for text in [v.render(), v.render_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}π".into());
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(5.0).render(), "5");
        assert_eq!(Json::Num(5.5).render(), "5.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"k": 3, "s": "x", "neg": -1.5}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-1.5));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_map().unwrap().len(), 3);
    }

    #[test]
    fn uint_renders_exactly_above_2_pow_53() {
        // 2^53 + 1 is the first integer an f64 cannot represent.
        let v = (1u64 << 53) + 1;
        assert_eq!(Json::Uint(v).render(), "9007199254740993");
        assert_eq!(Json::Uint(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Uint(0).render(), "0");
        assert_eq!(Json::Uint(v).as_u64(), Some(v));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" \n\t{ \"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]))
        );
    }
}
