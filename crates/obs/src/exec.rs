//! Execution guardrails: wall-clock deadlines, traversal budgets, and
//! cooperative cancellation.
//!
//! The paper's algorithms are evaluated on clean in-memory data, but a
//! serving engine must be able to stop a runaway query and still return
//! something useful. This module provides the shared machinery:
//!
//! * [`ExecutionLimits`] — a declarative bundle of limits (deadline,
//!   node-visit budget, heap-entry budget) plus an optional
//!   [`CancellationToken`], turned into a live [`ExecGuard`] per query.
//! * [`ExecGuard`] — the object threaded through R-tree traversals,
//!   skyline computations, and the join heap loop. Cloning a guard
//!   *forks* it: all clones share the same budgets and trip state, so
//!   parallel workers drain one common allowance and one worker's trip
//!   stops the others.
//! * [`Interrupt`] — why a guard tripped. Sticky: once a limit fires,
//!   every subsequent check on any clone reports the same reason.
//! * [`Completion`] — how a query ended: [`Completion::Exact`] or
//!   [`Completion::Partial`] with the interrupt as the reason. Anytime
//!   algorithms return best-so-far results tagged with this status
//!   instead of erroring.
//!
//! The unlimited guard ([`ExecGuard::unlimited`], or
//! [`ExecutionLimits::none`]`.start()`) carries no shared state and its
//! checks compile down to a branch on a `None`, so instrumenting a hot
//! path with a guard costs nothing when no limits are set — mirroring
//! the [`crate::NullRecorder`] design.
//!
//! Fault injection (see [`crate::faults::FaultPlan`]) hooks into the
//! same node-visit count, so chaos tests can deterministically panic,
//! stall, or cancel at the Nth visit of any guarded traversal.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::faults::FaultPlan;

/// Why a guarded query stopped early. Ordered roughly by "how external"
/// the cause is; the numeric codes are an implementation detail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The R-tree node-visit budget is exhausted.
    NodeVisitBudget,
    /// The priority-queue entry budget is exhausted.
    HeapBudget,
    /// The [`CancellationToken`] was cancelled.
    Cancelled,
    /// The serving front-end shed the request before it ran (bounded
    /// queue full, or its deadline had already passed on arrival). The
    /// accompanying partial answer is empty by construction.
    Overloaded,
}

impl Interrupt {
    /// Human-readable reason, used in reports and CLI output.
    pub fn reason(self) -> &'static str {
        match self {
            Interrupt::DeadlineExceeded => "deadline exceeded",
            Interrupt::NodeVisitBudget => "node visit budget exhausted",
            Interrupt::HeapBudget => "heap entry budget exhausted",
            Interrupt::Cancelled => "cancelled",
            Interrupt::Overloaded => "shed by overloaded server",
        }
    }

    fn code(self) -> u8 {
        match self {
            Interrupt::DeadlineExceeded => 1,
            Interrupt::NodeVisitBudget => 2,
            Interrupt::HeapBudget => 3,
            Interrupt::Cancelled => 4,
            Interrupt::Overloaded => 5,
        }
    }

    fn from_code(code: u8) -> Option<Interrupt> {
        match code {
            1 => Some(Interrupt::DeadlineExceeded),
            2 => Some(Interrupt::NodeVisitBudget),
            3 => Some(Interrupt::HeapBudget),
            4 => Some(Interrupt::Cancelled),
            5 => Some(Interrupt::Overloaded),
            _ => None,
        }
    }
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.reason())
    }
}

/// How an anytime query ended.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Completion {
    /// The query ran to the end; the results are the exact answer.
    #[default]
    Exact,
    /// A limit fired; the results are a valid best-so-far answer (see
    /// the individual algorithm's anytime semantics).
    Partial(Interrupt),
}

impl Completion {
    /// Whether the query completed exactly.
    pub fn is_exact(self) -> bool {
        matches!(self, Completion::Exact)
    }

    /// The interrupt behind a partial completion.
    pub fn interrupt(self) -> Option<Interrupt> {
        match self {
            Completion::Exact => None,
            Completion::Partial(i) => Some(i),
        }
    }
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completion::Exact => f.write_str("exact"),
            Completion::Partial(i) => write!(f, "partial ({i})"),
        }
    }
}

/// A shareable cancellation flag. Clone it, hand one clone to
/// [`ExecutionLimits::with_token`], keep the other, and call
/// [`CancellationToken::cancel`] from any thread to stop the query at
/// its next guard check.
#[derive(Clone, Debug, Default)]
pub struct CancellationToken(Arc<AtomicBool>);

impl CancellationToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Declarative execution limits for one query. All fields default to
/// unlimited; builder methods opt into individual guardrails.
///
/// ```
/// use skyup_obs::{CancellationToken, ExecutionLimits};
/// use std::time::Duration;
///
/// let token = CancellationToken::new();
/// let limits = ExecutionLimits::none()
///     .with_deadline(Duration::from_millis(50))
///     .with_max_node_visits(10_000)
///     .with_token(token.clone());
/// let mut guard = limits.start();
/// assert!(guard.checkpoint().is_ok());
/// token.cancel();
/// assert!(guard.checkpoint().is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExecutionLimits {
    /// Maximum wall-clock time from [`ExecutionLimits::start`].
    pub max_wall: Option<Duration>,
    /// Maximum R-tree node visits across every traversal of the query.
    pub max_node_visits: Option<u64>,
    /// Maximum priority-queue pushes across every heap of the query.
    pub max_heap_entries: Option<u64>,
    /// External cancellation token observed by every guard check.
    pub token: Option<CancellationToken>,
    /// Deterministic fault injection (test support; see
    /// [`crate::faults`]).
    pub faults: Option<FaultPlan>,
}

impl ExecutionLimits {
    /// No limits at all: the resulting guard is free.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the wall-clock deadline, measured from `start()`.
    pub fn with_deadline(mut self, max_wall: Duration) -> Self {
        self.max_wall = Some(max_wall);
        self
    }

    /// Sets the R-tree node-visit budget.
    pub fn with_max_node_visits(mut self, n: u64) -> Self {
        self.max_node_visits = Some(n);
        self
    }

    /// Sets the heap-entry budget.
    pub fn with_max_heap_entries(mut self, n: u64) -> Self {
        self.max_heap_entries = Some(n);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_token(mut self, token: CancellationToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Attaches a fault-injection plan (test support).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Whether no guardrail (and no fault plan) is configured.
    pub fn is_unlimited(&self) -> bool {
        self.max_wall.is_none()
            && self.max_node_visits.is_none()
            && self.max_heap_entries.is_none()
            && self.token.is_none()
            && self.faults.is_none()
    }

    /// Arms the limits: the deadline clock starts now. The returned
    /// guard is what algorithms thread through their traversals; clone
    /// it to share the same budgets across worker threads.
    pub fn start(&self) -> ExecGuard {
        if self.is_unlimited() {
            return ExecGuard::unlimited();
        }
        ExecGuard {
            core: Some(Arc::new(GuardCore {
                deadline: self.max_wall.map(|d| Instant::now() + d),
                max_visits: self.max_node_visits.unwrap_or(u64::MAX),
                max_heap: self.max_heap_entries.unwrap_or(u64::MAX),
                visits: AtomicU64::new(0),
                heap: AtomicU64::new(0),
                token: self.token.clone().unwrap_or_default(),
                tripped: AtomicU8::new(0),
                faults: self.faults.clone(),
            })),
            visits: 0,
        }
    }
}

/// Shared state behind every clone of one query's guard.
#[derive(Debug)]
struct GuardCore {
    deadline: Option<Instant>,
    max_visits: u64,
    max_heap: u64,
    visits: AtomicU64,
    heap: AtomicU64,
    token: CancellationToken,
    tripped: AtomicU8,
    faults: Option<FaultPlan>,
}

impl GuardCore {
    /// Records the first trip; later trips keep the original reason.
    fn trip(&self, i: Interrupt) -> Interrupt {
        match self
            .tripped
            .compare_exchange(0, i.code(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => i,
            Err(prev) => Interrupt::from_code(prev).unwrap_or(i),
        }
    }

    fn tripped(&self) -> Option<Interrupt> {
        Interrupt::from_code(self.tripped.load(Ordering::Relaxed))
    }

    /// Sticky-trip, cancellation, and deadline checks (no counting).
    fn check_soft(&self) -> Result<(), Interrupt> {
        if let Some(i) = self.tripped() {
            return Err(i);
        }
        if self.token.is_cancelled() {
            return Err(self.trip(Interrupt::Cancelled));
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(self.trip(Interrupt::DeadlineExceeded));
            }
        }
        Ok(())
    }
}

/// The live guard threaded through guarded traversals. Obtained from
/// [`ExecutionLimits::start`] (or [`ExecGuard::unlimited`] for the free
/// no-op variant). `Clone` forks the guard: clones share the budgets,
/// the deadline, the token, and the sticky trip state.
#[derive(Debug)]
pub struct ExecGuard {
    core: Option<Arc<GuardCore>>,
    /// Node visits charged through *this* clone (per-worker count; the
    /// shared total lives in the core).
    visits: u64,
}

impl Clone for ExecGuard {
    fn clone(&self) -> Self {
        ExecGuard {
            core: self.core.clone(),
            visits: 0,
        }
    }
}

impl ExecGuard {
    /// A guard with no limits: every check is `Ok` and nearly free.
    pub fn unlimited() -> Self {
        ExecGuard {
            core: None,
            visits: 0,
        }
    }

    /// Whether this guard can never interrupt (no limits, no faults).
    pub fn is_unlimited(&self) -> bool {
        self.core.is_none()
    }

    /// Charges one R-tree node visit against the budget, fires any
    /// fault scheduled for this visit, and checks the deadline, the
    /// token, and the sticky trip state.
    ///
    /// Call this *before* reading the node: a budget of `N` allows
    /// exactly `N` node reads.
    #[inline]
    pub fn visit_node(&mut self) -> Result<(), Interrupt> {
        self.visits += 1;
        let Some(core) = &self.core else {
            return Ok(());
        };
        let n = core.visits.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(f) = &core.faults {
            f.fire(n, &core.token);
        }
        if n > core.max_visits {
            return Err(core.trip(Interrupt::NodeVisitBudget));
        }
        core.check_soft()
    }

    /// Charges one priority-queue push against the heap budget and
    /// checks the sticky trip state.
    #[inline]
    pub fn heap_push(&mut self) -> Result<(), Interrupt> {
        let Some(core) = &self.core else {
            return Ok(());
        };
        let h = core.heap.fetch_add(1, Ordering::Relaxed) + 1;
        if h > core.max_heap {
            return Err(core.trip(Interrupt::HeapBudget));
        }
        if let Some(i) = core.tripped() {
            return Err(i);
        }
        Ok(())
    }

    /// Deadline + cancellation + sticky-trip check without charging any
    /// budget — for loop boundaries (between products, between heap
    /// pops).
    #[inline]
    pub fn checkpoint(&mut self) -> Result<(), Interrupt> {
        match &self.core {
            None => Ok(()),
            Some(core) => core.check_soft(),
        }
    }

    /// The sticky interrupt, if any clone of this guard has tripped.
    pub fn interrupted(&self) -> Option<Interrupt> {
        self.core.as_ref().and_then(|c| c.tripped())
    }

    /// Node visits charged through this clone (a worker-local count).
    pub fn node_visits(&self) -> u64 {
        self.visits
    }

    /// Node visits charged across *all* clones of this guard.
    pub fn total_node_visits(&self) -> u64 {
        match &self.core {
            None => self.visits,
            Some(core) => core.visits.load(Ordering::Relaxed),
        }
    }

    /// Cancels the query for every clone of this guard (no-op on the
    /// unlimited guard). Used to stop sibling workers after a panic.
    pub fn cancel(&self) {
        if let Some(core) = &self.core {
            core.token.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let mut g = ExecGuard::unlimited();
        for _ in 0..10_000 {
            assert!(g.visit_node().is_ok());
            assert!(g.heap_push().is_ok());
            assert!(g.checkpoint().is_ok());
        }
        assert!(g.is_unlimited());
        assert_eq!(g.node_visits(), 10_000);
        assert_eq!(g.interrupted(), None);
        assert!(ExecutionLimits::none().is_unlimited());
    }

    #[test]
    fn node_budget_trips_exactly_at_limit() {
        let mut g = ExecutionLimits::none().with_max_node_visits(5).start();
        for _ in 0..5 {
            assert!(g.visit_node().is_ok());
        }
        assert_eq!(g.visit_node(), Err(Interrupt::NodeVisitBudget));
        // Sticky: every later check reports the same reason.
        assert_eq!(g.checkpoint(), Err(Interrupt::NodeVisitBudget));
        assert_eq!(g.heap_push(), Err(Interrupt::NodeVisitBudget));
        assert_eq!(g.interrupted(), Some(Interrupt::NodeVisitBudget));
    }

    #[test]
    fn heap_budget_trips() {
        let mut g = ExecutionLimits::none().with_max_heap_entries(3).start();
        for _ in 0..3 {
            assert!(g.heap_push().is_ok());
        }
        assert_eq!(g.heap_push(), Err(Interrupt::HeapBudget));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let mut g = ExecutionLimits::none()
            .with_deadline(Duration::from_millis(0))
            .start();
        assert_eq!(g.checkpoint(), Err(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn token_cancellation_observed() {
        let token = CancellationToken::new();
        let mut g = ExecutionLimits::none().with_token(token.clone()).start();
        assert!(g.checkpoint().is_ok());
        assert!(g.visit_node().is_ok());
        token.cancel();
        assert_eq!(g.checkpoint(), Err(Interrupt::Cancelled));
        assert_eq!(g.visit_node(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn clones_share_budget_and_trip_state() {
        let g = ExecutionLimits::none().with_max_node_visits(4).start();
        let mut a = g.clone();
        let mut b = g.clone();
        assert!(a.visit_node().is_ok());
        assert!(b.visit_node().is_ok());
        assert!(a.visit_node().is_ok());
        assert!(b.visit_node().is_ok());
        // The 5th visit — through either clone — trips both.
        assert_eq!(a.visit_node(), Err(Interrupt::NodeVisitBudget));
        assert_eq!(b.checkpoint(), Err(Interrupt::NodeVisitBudget));
        // Local counts are per-clone; the shared total sums them.
        assert_eq!(a.node_visits(), 3);
        assert_eq!(b.node_visits(), 2);
        assert_eq!(a.total_node_visits(), 5);
    }

    #[test]
    fn first_trip_reason_wins() {
        let mut g = ExecutionLimits::none()
            .with_max_node_visits(1)
            .with_max_heap_entries(1)
            .start();
        assert!(g.visit_node().is_ok());
        assert_eq!(g.visit_node(), Err(Interrupt::NodeVisitBudget));
        // A later heap overflow still reports the original reason.
        let _ = g.heap_push();
        assert_eq!(g.heap_push(), Err(Interrupt::NodeVisitBudget));
    }

    #[test]
    fn cancel_through_guard_stops_all_clones() {
        let g = ExecutionLimits::none().with_max_node_visits(1000).start();
        let mut other = g.clone();
        g.cancel();
        assert_eq!(other.checkpoint(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn completion_display_and_accessors() {
        assert!(Completion::Exact.is_exact());
        assert_eq!(Completion::Exact.interrupt(), None);
        let p = Completion::Partial(Interrupt::DeadlineExceeded);
        assert!(!p.is_exact());
        assert_eq!(p.interrupt(), Some(Interrupt::DeadlineExceeded));
        assert_eq!(p.to_string(), "partial (deadline exceeded)");
        assert_eq!(Completion::Exact.to_string(), "exact");
        assert_eq!(Completion::default(), Completion::Exact);
    }

    #[test]
    fn interrupt_codes_round_trip() {
        for i in [
            Interrupt::DeadlineExceeded,
            Interrupt::NodeVisitBudget,
            Interrupt::HeapBudget,
            Interrupt::Cancelled,
            Interrupt::Overloaded,
        ] {
            assert_eq!(Interrupt::from_code(i.code()), Some(i));
            assert!(!i.reason().is_empty());
        }
        assert_eq!(Interrupt::from_code(0), None);
        assert_eq!(Interrupt::from_code(99), None);
    }
}
