//! Query instrumentation for the `skyup` workspace: named counters,
//! per-phase span timers, and report emitters — std-only, zero external
//! dependencies.
//!
//! The paper's entire evaluation (Figures 4–11) is counter-based: page
//! and node accesses, dominance tests, and runtime across the probing
//! and join algorithms. This crate gives every algorithm one shared
//! vocabulary for those costs:
//!
//! * [`Recorder`] — the sink trait the algorithms write into. Hot paths
//!   take a generic `R: Recorder + ?Sized` parameter, so the disabled
//!   [`NullRecorder`] monomorphizes to nothing; `&mut dyn Recorder`
//!   works where object safety is preferred.
//! * [`Counter`] — the closed set of named counters covering the
//!   paper's cost model (dominance tests, R-tree node/entry accesses,
//!   lower-bound evaluations, …).
//! * [`Phase`] — the coarse query phases timed with [`Instant`]-based
//!   spans (index build, probe loop, `getDominatingSky`, join
//!   expansion, Algorithm 1 upgrades).
//! * [`QueryMetrics`] — the collecting recorder: fixed-size counter and
//!   phase arrays, a span stack for nesting, and JSON / aligned-text
//!   report emitters ([`QueryMetrics::to_json`],
//!   [`QueryMetrics::render_text`]).
//! * [`json`] — a minimal hand-rolled JSON value type with a renderer
//!   and parser, used both to emit reports and to round-trip them in
//!   tests (the environment has no network access to crates.io, so no
//!   `serde`).
//! * [`hist`] — log-scale latency histograms: power-of-2 buckets,
//!   exact counts, deterministic merge, cumulative + rolling windows
//!   (the serve layer's per-class latency store).
//! * [`trace`] — per-request [`Trace`] records and the fixed-size
//!   [`FlightRecorder`] ring of the last N completed traces.
//! * [`exec`] — execution guardrails: [`ExecutionLimits`] (deadline,
//!   node-visit and heap budgets, [`CancellationToken`]) armed into an
//!   [`ExecGuard`] that traversals check, and the
//!   [`Completion`]/[`Interrupt`] vocabulary for anytime results.
//! * [`faults`] — the deterministic [`FaultPlan`] chaos-testing hook
//!   evaluated by guards at exact node-visit counts.
//!
//! # Example
//!
//! ```
//! use skyup_obs::{timed, Counter, Phase, QueryMetrics, Recorder};
//!
//! let mut m = QueryMetrics::new();
//! timed(&mut m, Phase::ProbeLoop, |rec| {
//!     rec.bump(Counter::DominanceTests);
//!     rec.incr(Counter::RtreeNodeAccesses, 3);
//! });
//! assert_eq!(m.get(Counter::DominanceTests), 1);
//! assert_eq!(m.get(Counter::RtreeNodeAccesses), 3);
//! assert_eq!(m.phase_calls(Phase::ProbeLoop), 1);
//! let report = m.to_json(); // valid JSON, parseable by skyup_obs::json
//! assert!(skyup_obs::json::parse(&report).is_ok());
//! ```

pub mod exec;
pub mod faults;
pub mod hist;
pub mod json;
pub mod report;
pub mod trace;

mod counter;
mod metrics;

pub use counter::{Counter, Phase};
pub use exec::{CancellationToken, Completion, ExecGuard, ExecutionLimits, Interrupt};
pub use faults::{FaultPlan, IoFaultPlan};
pub use hist::{LatencyHistogram, WindowedHistogram};
pub use metrics::QueryMetrics;
pub use trace::{FlightRecorder, Trace, TraceClass, TraceId};

use std::time::Instant;

/// A sink for instrumentation events.
///
/// Algorithms thread a `&mut R` (or `&mut dyn Recorder`) through their
/// hot paths and call [`Recorder::bump`] / [`Recorder::incr`] on the
/// way. The [`NullRecorder`] implementation is a set of empty inlined
/// bodies, so instrumented code paths compile to the uninstrumented
/// machine code when disabled.
pub trait Recorder {
    /// Adds `by` to counter `c`.
    fn incr(&mut self, c: Counter, by: u64);

    /// Opens a span for `phase`. Spans nest; each `enter` must be
    /// matched by an [`Recorder::exit`] of the same phase.
    fn enter(&mut self, phase: Phase);

    /// Closes the innermost span, which must belong to `phase`.
    fn exit(&mut self, phase: Phase);

    /// Adds `by` to the total time and `calls` to the invocation count
    /// of `phase` without an open span — used to merge pre-aggregated
    /// timings (e.g. from worker threads).
    fn add_phase(&mut self, phase: Phase, nanos: u64, calls: u64) {
        let _ = (phase, nanos, calls);
    }

    /// Increments counter `c` by one.
    #[inline]
    fn bump(&mut self, c: Counter) {
        self.incr(c, 1);
    }

    /// Whether this recorder keeps anything. Lets callers skip building
    /// auxiliary state (per-thread collectors, derived counts) that
    /// only matters when metrics are actually collected.
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }

    /// Folds a finished [`QueryMetrics`] into this recorder: counters,
    /// phase totals, and call counts are added.
    fn absorb(&mut self, metrics: &QueryMetrics) {
        for c in Counter::ALL {
            let v = metrics.get(c);
            if v > 0 {
                self.incr(c, v);
            }
        }
        for p in Phase::ALL {
            let nanos = metrics.phase_nanos(p);
            let calls = metrics.phase_calls(p);
            if nanos > 0 || calls > 0 {
                self.add_phase(p, nanos, calls);
            }
        }
    }
}

/// The always-off recorder: every method is an empty `#[inline]` body,
/// so generic instrumentation disappears at compile time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn incr(&mut self, _c: Counter, _by: u64) {}
    #[inline]
    fn enter(&mut self, _phase: Phase) {}
    #[inline]
    fn exit(&mut self, _phase: Phase) {}
    #[inline]
    fn bump(&mut self, _c: Counter) {}
    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
    #[inline]
    fn absorb(&mut self, _metrics: &QueryMetrics) {}
}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline]
    fn incr(&mut self, c: Counter, by: u64) {
        (**self).incr(c, by);
    }
    #[inline]
    fn enter(&mut self, phase: Phase) {
        (**self).enter(phase);
    }
    #[inline]
    fn exit(&mut self, phase: Phase) {
        (**self).exit(phase);
    }
    #[inline]
    fn add_phase(&mut self, phase: Phase, nanos: u64, calls: u64) {
        (**self).add_phase(phase, nanos, calls);
    }
    #[inline]
    fn bump(&mut self, c: Counter) {
        (**self).bump(c);
    }
    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
    #[inline]
    fn absorb(&mut self, metrics: &QueryMetrics) {
        (**self).absorb(metrics);
    }
}

/// Runs `f` inside a span of `phase` on `rec`. With a [`NullRecorder`]
/// this inlines to a plain call of `f`; with [`QueryMetrics`] the
/// phase's total time and call count grow by this invocation.
#[inline]
pub fn timed<R: Recorder + ?Sized, T>(rec: &mut R, phase: Phase, f: impl FnOnce(&mut R) -> T) -> T {
    rec.enter(phase);
    let out = f(rec);
    rec.exit(phase);
    out
}

/// Times `f` with a plain [`Instant`] and returns `(nanos, result)` —
/// the building block for callers that aggregate timings themselves.
#[inline]
pub fn clocked<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_nanos().min(u64::MAX as u128) as u64, out)
}
