//! Report emitters: JSON document and aligned-text table.
//!
//! JSON schema (stable keys; every counter and phase always present so
//! consumers can diff snapshots field-by-field):
//!
//! ```json
//! {
//!   "schema": "skyup-obs/1",
//!   "phases": {
//!     "index_build": { "nanos": 0, "calls": 0 },
//!     ...
//!   },
//!   "total_phase_nanos": 0,
//!   "counters": { "dominance_tests": 0, ... }
//! }
//! ```

use std::fmt::Write as _;

use crate::json::Json;
use crate::{Counter, Phase, QueryMetrics};

/// Schema identifier embedded in every JSON report.
pub const SCHEMA: &str = "skyup-obs/1";

/// Builds the JSON document for `m`.
pub fn to_json(m: &QueryMetrics) -> Json {
    let phases = Phase::ALL
        .iter()
        .map(|&p| {
            (
                p.name().to_string(),
                Json::obj(vec![
                    ("nanos", Json::Num(m.phase_nanos(p) as f64)),
                    ("calls", Json::Num(m.phase_calls(p) as f64)),
                ]),
            )
        })
        .collect();
    let counters = Counter::ALL
        .iter()
        .map(|&c| (c.name().to_string(), Json::Num(m.get(c) as f64)))
        .collect();
    Json::obj(vec![
        ("schema", Json::Str(SCHEMA.to_string())),
        ("phases", Json::Obj(phases)),
        ("total_phase_nanos", Json::Num(m.total_phase_nanos() as f64)),
        ("counters", Json::Obj(counters)),
    ])
}

/// Formats a nanosecond duration with an adaptive unit.
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Renders the aligned-text report: a phases table (only phases that
/// ran), then every non-zero counter. Zero-valued rows are omitted to
/// keep single-algorithm reports short.
pub fn render_text(m: &QueryMetrics) -> String {
    let mut out = String::new();
    out.push_str("query metrics\n");

    let phase_rows: Vec<(&str, String, String)> = Phase::ALL
        .iter()
        .filter(|&&p| m.phase_calls(p) > 0 || m.phase_nanos(p) > 0)
        .map(|&p| {
            (
                p.name(),
                fmt_nanos(m.phase_nanos(p)),
                m.phase_calls(p).to_string(),
            )
        })
        .collect();
    if !phase_rows.is_empty() {
        out.push_str("  phases\n");
        let name_w = phase_rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
        let time_w = phase_rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
        for (name, time, calls) in &phase_rows {
            let _ = writeln!(out, "    {name:<name_w$}  {time:>time_w$}  ({calls} calls)");
        }
        let _ = writeln!(
            out,
            "    {:<name_w$}  {:>time_w$}",
            "total",
            fmt_nanos(m.total_phase_nanos())
        );
    }

    let counter_rows: Vec<(&str, String)> = Counter::ALL
        .iter()
        .filter(|&&c| m.get(c) > 0)
        .map(|&c| (c.name(), m.get(c).to_string()))
        .collect();
    if !counter_rows.is_empty() {
        out.push_str("  counters\n");
        let name_w = counter_rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
        let val_w = counter_rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
        for (name, value) in &counter_rows {
            let _ = writeln!(out, "    {name:<name_w$}  {value:>val_w$}");
        }
    }

    if phase_rows.is_empty() && counter_rows.is_empty() {
        out.push_str("  (nothing recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn json_report_contains_every_key() {
        let m = QueryMetrics::new();
        let doc = crate::json::parse(&m.to_json()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let phases = doc.get("phases").unwrap();
        for p in Phase::ALL {
            assert!(phases.get(p.name()).is_some(), "missing phase {}", p.name());
        }
        let counters = doc.get("counters").unwrap();
        for c in Counter::ALL {
            assert!(
                counters.get(c.name()).is_some(),
                "missing counter {}",
                c.name()
            );
        }
    }

    #[test]
    fn json_first_line_is_open_brace() {
        let m = QueryMetrics::new();
        assert_eq!(m.to_json().lines().next(), Some("{"));
    }

    #[test]
    fn text_report_skips_zero_rows() {
        let mut m = QueryMetrics::new();
        assert!(m.render_text().contains("(nothing recorded)"));
        m.incr(Counter::DominanceTests, 9);
        m.add_phase(Phase::ProbeLoop, 1_234_567, 1);
        let text = m.render_text();
        assert!(text.contains("dominance_tests"));
        assert!(text.contains("probe_loop"));
        assert!(text.contains("1.235 ms"));
        assert!(!text.contains("heap_pushes"));
        assert!(!text.contains("index_build"));
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(12), "12 ns");
        assert_eq!(fmt_nanos(12_500), "12.500 µs");
        assert_eq!(fmt_nanos(3_000_000), "3.000 ms");
        assert_eq!(fmt_nanos(2_500_000_000), "2.500 s");
    }
}
