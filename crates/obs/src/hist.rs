//! Log-scale latency histograms with exact counts and deterministic
//! merge.
//!
//! The serve telemetry layer needs percentile latencies per request
//! class without an external metrics dependency, so this is the
//! smallest histogram that is still *exact about what it knows*:
//!
//! * **Power-of-2 buckets.** Observation `v` (nanoseconds) lands in
//!   bucket `⌊log2 v⌋ + 1` (bucket 0 holds `v == 0`), giving 65 fixed
//!   buckets covering all of `u64` with ≤ 2× relative error on any
//!   reported quantile bound — plenty for latency triage, and the
//!   bucket index is a single `leading_zeros` instruction.
//! * **Exact counts.** Bucket counts, total count, sum, min, and max
//!   are exact `u64`s; nothing is sampled or decayed. The structural
//!   invariant `Σ buckets == count` is what the bench gate asserts.
//! * **Deterministic merge.** [`LatencyHistogram::merge`] is bucket-wise
//!   addition plus min/max/count/sum folding. Because a percentile is a
//!   pure function of the bucket array (and `max`), merging two
//!   histograms yields *identical* percentiles to one histogram fed
//!   both streams, in any order — the property test in this module
//!   pins that down.
//!
//! [`WindowedHistogram`] layers a rolling view on top: a cumulative
//! histogram plus a current/previous window pair rolled explicitly by
//! the owner (the serve layer rolls on a wall-clock cadence under its
//! own lock). The rolling snapshot is `merge(previous, current)`, so a
//! freshly rolled window never reports an empty view mid-interval.

use crate::json::Json;

/// Number of buckets: bucket 0 for zero, buckets 1..=64 for the 64
/// possible positions of the highest set bit of a nonzero `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index of observation `v`: 0 for 0, else `⌊log2 v⌋ + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the largest value that maps to
/// it): 0 for bucket 0, `2^i - 1` for buckets 1..=64.
#[inline]
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
#[inline]
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A fixed-size log-scale histogram of `u64` observations
/// (nanoseconds, by convention) with exact counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`: bucket-wise addition. Deterministic
    /// and order-independent, so merged percentiles equal those of a
    /// single histogram fed both streams.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts (index = `bucket_of(v)`).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound on the
    /// observation at rank `⌈q·count⌉`, reported as the containing
    /// bucket's inclusive upper bound — except when the rank falls in
    /// the highest nonempty bucket, where the exact tracked `max` is
    /// returned (so `percentile(1.0) == max`, exactly).
    ///
    /// A pure function of the bucket array and `max`, which is what
    /// makes the merge-percentile property exact rather than
    /// approximate. Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let highest = (0..BUCKETS).rev().find(|&i| self.buckets[i] > 0).unwrap();
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i];
            if seen >= rank {
                return if i == highest { self.max } else { bucket_hi(i) };
            }
        }
        self.max
    }

    /// JSON snapshot: exact `Json::Uint` fields throughout, nonempty
    /// buckets only (as `{lo, hi, count}` ranges).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = (0..BUCKETS)
            .filter(|&i| self.buckets[i] > 0)
            .map(|i| {
                Json::obj(vec![
                    ("lo", Json::Uint(bucket_lo(i))),
                    ("hi", Json::Uint(bucket_hi(i))),
                    ("count", Json::Uint(self.buckets[i])),
                ])
            })
            .collect();
        Json::obj(vec![
            ("count", Json::Uint(self.count)),
            ("sum", Json::Uint(self.sum)),
            ("min", Json::Uint(self.min())),
            ("max", Json::Uint(self.max)),
            ("p50", Json::Uint(self.percentile(0.50))),
            ("p95", Json::Uint(self.percentile(0.95))),
            ("p99", Json::Uint(self.percentile(0.99))),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// A cumulative histogram plus a two-slot rolling window.
///
/// The owner calls [`WindowedHistogram::roll`] on its own cadence
/// (the serve layer: once per window interval, checked under the lock
/// it already holds to record). The rolling snapshot merges the
/// previous and current slots, so it always covers between one and two
/// window intervals of observations — never an empty just-rolled slot.
#[derive(Clone, Debug, Default)]
pub struct WindowedHistogram {
    cumulative: LatencyHistogram,
    current: LatencyHistogram,
    previous: LatencyHistogram,
}

impl WindowedHistogram {
    /// An empty windowed histogram.
    pub const fn new() -> Self {
        WindowedHistogram {
            cumulative: LatencyHistogram::new(),
            current: LatencyHistogram::new(),
            previous: LatencyHistogram::new(),
        }
    }

    /// Records into both the cumulative histogram and the current
    /// window slot.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.cumulative.record(v);
        self.current.record(v);
    }

    /// Rotates the window: current becomes previous, current clears.
    pub fn roll(&mut self) {
        self.previous = std::mem::take(&mut self.current);
    }

    /// All observations since construction.
    pub fn cumulative(&self) -> &LatencyHistogram {
        &self.cumulative
    }

    /// The rolling view: previous window merged with the in-progress
    /// one (1–2 window intervals of data).
    pub fn rolling(&self) -> LatencyHistogram {
        let mut h = self.previous.clone();
        h.merge(&self.current);
        h
    }

    /// JSON snapshot with `cumulative` and `rolling` sub-objects.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cumulative", self.cumulative.to_json()),
            ("rolling", self.rolling().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64*: deterministic stream generator for the property
    /// tests, independent of any workspace RNG.
    struct Prng(u64);
    impl Prng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            self.0.wrapping_mul(0x2545F4914F6CDD1D)
        }
        /// Latency-shaped value: log-uniform over ~9 orders of
        /// magnitude, with occasional zeros.
        fn latency(&mut self) -> u64 {
            let r = self.next();
            if r % 64 == 0 {
                return 0;
            }
            let shift = (r >> 8) % 30;
            (r >> 34) >> shift
        }
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        // Every value maps into exactly the bucket whose [lo, hi]
        // range contains it.
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            7,
            8,
            1023,
            1024,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_of(v);
            assert!(bucket_lo(i) <= v && v <= bucket_hi(i), "v={v} bucket={i}");
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn merge_percentiles_equal_single_stream() {
        // Property: for random streams A and B, percentiles of
        // merge(hist(A), hist(B)) equal percentiles of hist(A ++ B),
        // at every probed quantile. Exact, not approximate.
        let mut rng = Prng(0x5eed_cafe);
        for trial in 0..50 {
            let la = (rng.next() % 200) as usize;
            let lb = (rng.next() % 200) as usize;
            let a: Vec<u64> = (0..la).map(|_| rng.latency()).collect();
            let b: Vec<u64> = (0..lb).map(|_| rng.latency()).collect();

            let mut ha = LatencyHistogram::new();
            let mut hb = LatencyHistogram::new();
            let mut hall = LatencyHistogram::new();
            for &v in &a {
                ha.record(v);
                hall.record(v);
            }
            for &v in &b {
                hb.record(v);
                hall.record(v);
            }
            let mut merged = ha.clone();
            merged.merge(&hb);

            assert_eq!(merged, hall, "trial {trial}: merged state diverged");
            for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
                assert_eq!(
                    merged.percentile(q),
                    hall.percentile(q),
                    "trial {trial}: q={q}"
                );
            }
        }
    }

    #[test]
    fn bucket_counts_conserved() {
        // Σ buckets == count, always — the invariant the bench gate
        // checks on emitted snapshots.
        let mut rng = Prng(0xfeed);
        let mut h = LatencyHistogram::new();
        for _ in 0..10_000 {
            h.record(rng.latency());
        }
        assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
        assert_eq!(h.count(), 10_000);

        let mut other = LatencyHistogram::new();
        for _ in 0..777 {
            other.record(rng.latency());
        }
        h.merge(&other);
        assert_eq!(h.buckets().iter().sum::<u64>(), 10_777);
    }

    #[test]
    fn percentile_bounds_are_honest() {
        // The reported quantile is an upper bound within 2x of the true
        // order statistic, p100 is the exact max, and p50 of a
        // single-value histogram is that value's bucket bound.
        let mut h = LatencyHistogram::new();
        let values = [3u64, 9, 1000, 1_000_000, 12];
        for v in values {
            h.record(v);
        }
        let mut sorted = values;
        sorted.sort();
        for (q, want_rank) in [(0.2, 0), (0.4, 1), (0.6, 2), (0.8, 3), (1.0, 4)] {
            let truth = sorted[want_rank];
            let got = h.percentile(q);
            assert!(got >= truth, "q={q}: {got} < true {truth}");
            assert!(got < truth.max(1) * 2, "q={q}: {got} >= 2x true {truth}");
        }
        assert_eq!(h.percentile(1.0), 1_000_000);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.min(), 3);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn json_uint_rendering_is_exact_above_2_pow_53() {
        // Counters and sums go through Json::Uint, so values above the
        // f64-exact range must survive render -> text unchanged.
        let mut h = LatencyHistogram::new();
        let big = (1u64 << 53) + 1; // not representable as f64
        h.record(big);
        h.record(big + 2);
        let j = h.to_json();
        let text = j.render();
        assert!(
            text.contains(&format!("\"sum\":{}", big + big + 2)),
            "sum not exact in {text}"
        );
        assert!(
            text.contains(&format!("\"max\":{}", big + 2)),
            "max not exact in {text}"
        );
        // And the per-bucket counts + bounds parse back as numbers.
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn windowed_roll_keeps_previous_window_visible() {
        let mut w = WindowedHistogram::new();
        w.record(10);
        w.record(20);
        assert_eq!(w.rolling().count(), 2);
        w.roll();
        // Just rolled: rolling view still shows the previous interval.
        assert_eq!(w.rolling().count(), 2);
        w.record(30);
        assert_eq!(w.rolling().count(), 3);
        w.roll();
        // Now the first interval has aged out.
        assert_eq!(w.rolling().count(), 1);
        w.roll();
        assert_eq!(w.rolling().count(), 0);
        // Cumulative never forgets.
        assert_eq!(w.cumulative().count(), 3);
    }
}
