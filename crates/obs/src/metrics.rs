//! The collecting recorder.

use std::time::Instant;

use crate::{Counter, Phase, Recorder};

/// The collecting [`Recorder`]: fixed-size counter and phase arrays plus
/// a span stack for nested timers.
///
/// Recording a counter is a single array add; opening/closing a span is
/// one `Instant::now()` each. The struct is cheap to create per query
/// and to merge across threads (see [`Recorder::absorb`]).
#[derive(Clone, Debug)]
pub struct QueryMetrics {
    counters: [u64; Counter::COUNT],
    phase_nanos: [u64; Phase::COUNT],
    phase_calls: [u64; Phase::COUNT],
    stack: Vec<(Phase, Instant)>,
}

// Derived `Default` requires `[u64; N]: Default`, which std only
// provides up to N = 32 — and the counter set has outgrown that.
impl Default for QueryMetrics {
    fn default() -> Self {
        QueryMetrics {
            counters: [0; Counter::COUNT],
            phase_nanos: [0; Phase::COUNT],
            phase_calls: [0; Phase::COUNT],
            stack: Vec::new(),
        }
    }
}

impl QueryMetrics {
    /// A fresh, all-zero metrics collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of counter `c`.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Total nanoseconds accumulated for `phase` across closed spans.
    #[inline]
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()]
    }

    /// Number of closed spans (plus merged calls) for `phase`.
    #[inline]
    pub fn phase_calls(&self, phase: Phase) -> u64 {
        self.phase_calls[phase.index()]
    }

    /// Sum of all phase times, in nanoseconds. Spans nest, so this can
    /// exceed wall time; it is a workload breakdown, not a total.
    pub fn total_phase_nanos(&self) -> u64 {
        self.phase_nanos.iter().sum()
    }

    /// Whether any counter or phase has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&v| v == 0)
            && self.phase_nanos.iter().all(|&v| v == 0)
            && self.phase_calls.iter().all(|&v| v == 0)
    }

    /// Resets every counter and phase to zero. Open spans are dropped.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// The JSON report (pretty-printed; first line is `{`). See
    /// [`crate::report`] for the schema.
    pub fn to_json(&self) -> String {
        crate::report::to_json(self).render_pretty()
    }

    /// The JSON report as a [`crate::json::Json`] value, for embedding
    /// into larger documents (bench snapshots).
    pub fn to_json_value(&self) -> crate::json::Json {
        crate::report::to_json(self)
    }

    /// The aligned-text report (phases table, then non-zero counters).
    pub fn render_text(&self) -> String {
        crate::report::render_text(self)
    }
}

impl Recorder for QueryMetrics {
    #[inline]
    fn incr(&mut self, c: Counter, by: u64) {
        self.counters[c.index()] += by;
    }

    #[inline]
    fn enter(&mut self, phase: Phase) {
        self.stack.push((phase, Instant::now()));
    }

    #[inline]
    fn exit(&mut self, phase: Phase) {
        let (opened, start) = self.stack.pop().expect("Recorder::exit with no open span");
        debug_assert_eq!(
            opened, phase,
            "span mismatch: exited {phase:?} but innermost open span is {opened:?}"
        );
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.phase_nanos[opened.index()] += nanos;
        self.phase_calls[opened.index()] += 1;
    }

    #[inline]
    fn add_phase(&mut self, phase: Phase, nanos: u64, calls: u64) {
        self.phase_nanos[phase.index()] += nanos;
        self.phase_calls[phase.index()] += calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timed;

    #[test]
    fn counters_accumulate() {
        let mut m = QueryMetrics::new();
        assert!(m.is_empty());
        m.bump(Counter::DominanceTests);
        m.incr(Counter::DominanceTests, 4);
        m.incr(Counter::HeapPushes, 2);
        assert_eq!(m.get(Counter::DominanceTests), 5);
        assert_eq!(m.get(Counter::HeapPushes), 2);
        assert_eq!(m.get(Counter::HeapPops), 0);
        assert!(!m.is_empty());
        m.reset();
        assert!(m.is_empty());
    }

    #[test]
    fn spans_nest_and_accumulate_per_phase() {
        let mut m = QueryMetrics::new();
        timed(&mut m, Phase::ProbeLoop, |rec| {
            timed(rec, Phase::DominatingSky, |rec| {
                rec.bump(Counter::RtreeNodeAccesses);
            });
            timed(rec, Phase::Upgrade, |_| {});
            timed(rec, Phase::Upgrade, |_| {});
        });
        assert_eq!(m.phase_calls(Phase::ProbeLoop), 1);
        assert_eq!(m.phase_calls(Phase::DominatingSky), 1);
        assert_eq!(m.phase_calls(Phase::Upgrade), 2);
        assert_eq!(m.phase_calls(Phase::IndexBuild), 0);
        // The outer span contains the inner ones, so its time is at
        // least as large as each child's.
        assert!(m.phase_nanos(Phase::ProbeLoop) >= m.phase_nanos(Phase::DominatingSky));
        assert!(m.phase_nanos(Phase::ProbeLoop) >= m.phase_nanos(Phase::Upgrade));
        assert_eq!(m.get(Counter::RtreeNodeAccesses), 1);
    }

    #[test]
    #[should_panic(expected = "no open span")]
    fn exit_without_enter_panics() {
        let mut m = QueryMetrics::new();
        m.exit(Phase::ProbeLoop);
    }

    #[test]
    fn add_phase_merges_preaggregated_time() {
        let mut m = QueryMetrics::new();
        m.add_phase(Phase::ProbeLoop, 1_000, 3);
        m.add_phase(Phase::ProbeLoop, 500, 1);
        assert_eq!(m.phase_nanos(Phase::ProbeLoop), 1_500);
        assert_eq!(m.phase_calls(Phase::ProbeLoop), 4);
        assert_eq!(m.total_phase_nanos(), 1_500);
    }

    #[test]
    fn absorb_folds_counters_and_phases() {
        let mut worker = QueryMetrics::new();
        worker.incr(Counter::ProductsEvaluated, 7);
        worker.add_phase(Phase::Upgrade, 2_000, 7);

        let mut main = QueryMetrics::new();
        main.incr(Counter::ProductsEvaluated, 1);
        main.absorb(&worker);
        assert_eq!(main.get(Counter::ProductsEvaluated), 8);
        assert_eq!(main.phase_nanos(Phase::Upgrade), 2_000);
        assert_eq!(main.phase_calls(Phase::Upgrade), 7);
    }

    #[test]
    fn report_totals_match_recorded_spans() {
        let mut m = QueryMetrics::new();
        m.add_phase(Phase::IndexBuild, 3_000_000, 1);
        m.add_phase(Phase::ProbeLoop, 7_000_000, 2);
        m.incr(Counter::DominanceTests, 42);
        assert_eq!(m.total_phase_nanos(), 10_000_000);

        let doc = crate::json::parse(&m.to_json()).unwrap();
        let phases = doc.get("phases").unwrap();
        let probe = phases.get("probe_loop").unwrap();
        assert_eq!(probe.get("nanos").and_then(|v| v.as_u64()), Some(7_000_000));
        assert_eq!(probe.get("calls").and_then(|v| v.as_u64()), Some(2));
        let counters = doc.get("counters").unwrap();
        assert_eq!(
            counters.get("dominance_tests").and_then(|v| v.as_u64()),
            Some(42)
        );
        assert_eq!(
            doc.get("total_phase_nanos").and_then(|v| v.as_u64()),
            Some(10_000_000)
        );
    }
}
