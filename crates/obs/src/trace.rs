//! Per-request trace records and the fixed-size flight recorder.
//!
//! A [`Trace`] is the completed-request record the serve layer fills
//! in: where the request's wall-clock went (queue wait, batch
//! assembly, kernel execution), what it cost (evaluated products,
//! cache hits/misses, dominator memo hits, dominance tests), and how
//! it ended ([`Completion`], shed flag, epoch). Traces are built *off*
//! the result path — the serving code measures with plain [`Instant`]s
//! it already takes, assembles the `Trace` after the reply is
//! determined, and hands it to the recorder.
//!
//! The [`FlightRecorder`] keeps the last N completed traces in a
//! fixed-size ring. Writers claim a slot with one `fetch_add` on the
//! ring cursor — wait-free, no shared lock — then store the trace
//! under that slot's own mutex. Two writers contend on a slot mutex
//! only when one laps the other around the whole ring (N writes
//! apart), so in practice the slot lock is always uncontended; readers
//! ([`FlightRecorder::dump`]) lock each slot briefly to clone. This is
//! "lock-free" in the operational sense that matters here — no global
//! lock, writers never wait on each other or on readers in the common
//! case — not in the formal sense of the whole store being lock-free.
//!
//! [`Instant`]: std::time::Instant

use crate::exec::Completion;
use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonically increasing per-server request id, minted at ingress.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// The request classes latency histograms are keyed by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum TraceClass {
    /// A query answered entirely from the dominance-aware result cache
    /// (zero misses).
    QueryCached,
    /// A query with at least one cache miss, computed per-request.
    QueryCold,
    /// A query with at least one cache miss, computed through the
    /// shared batch pipeline.
    QueryBatched,
    /// A query shed at admission (queue full, zero deadline, or
    /// shutdown) — never executed.
    QueryShed,
    /// A competitor add/remove (writer path, publishes a new epoch).
    Mutation,
    /// A stats read.
    Stats,
}

impl TraceClass {
    /// Every class, in declaration order.
    pub const ALL: [TraceClass; 6] = [
        TraceClass::QueryCached,
        TraceClass::QueryCold,
        TraceClass::QueryBatched,
        TraceClass::QueryShed,
        TraceClass::Mutation,
        TraceClass::Stats,
    ];

    /// Number of classes (histogram array length).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            TraceClass::QueryCached => "query_cached",
            TraceClass::QueryCold => "query_cold",
            TraceClass::QueryBatched => "query_batched",
            TraceClass::QueryShed => "query_shed",
            TraceClass::Mutation => "mutation",
            TraceClass::Stats => "stats",
        }
    }

    /// Array slot of this class.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A completed request's trace: identity, outcome, kernel counters,
/// and the phase breakdown of its wall-clock time (nanoseconds).
#[derive(Clone, Debug)]
pub struct Trace {
    /// Ingress-minted id; also the total order of the flight recorder.
    pub id: TraceId,
    /// Request class (decides which histogram the latency lands in).
    pub class: TraceClass,
    /// Snapshot epoch the request ran against (0 for shed requests).
    pub epoch: u64,
    /// How the request ended; `Partial` carries the interrupt cause.
    pub completion: Completion,
    /// Whether the request was shed at admission.
    pub shed: bool,
    /// Products in the request.
    pub products: u64,
    /// Products fully evaluated (cache misses actually computed).
    pub evaluated: u64,
    /// Per-product answers served from the result cache.
    pub cache_hits: u64,
    /// Per-product answers that missed the cache.
    pub cache_misses: u64,
    /// Batch items answered via the cross-request dominator memo.
    pub memo_hits: u64,
    /// Point-vs-point dominance tests charged to this request.
    pub dominance_tests: u64,
    /// Time from ingress to worker pickup (or to the shed decision).
    pub queue_nanos: u64,
    /// Batch-assembly share (batched requests; 0 on per-request path).
    pub assemble_nanos: u64,
    /// Kernel execution time (cache lookup + probing/upgrade work).
    pub exec_nanos: u64,
    /// Ingress-to-reply wall clock.
    pub total_nanos: u64,
}

impl Trace {
    /// JSON record with exact integer fields and the completion cause
    /// spelled out.
    pub fn to_json(&self) -> Json {
        let (completion, cause) = match self.completion {
            Completion::Exact => ("exact", Json::Null),
            Completion::Partial(i) => ("partial", Json::Str(i.reason().into())),
        };
        Json::obj(vec![
            ("id", Json::Uint(self.id.0)),
            ("class", Json::Str(self.class.name().into())),
            ("epoch", Json::Uint(self.epoch)),
            ("completion", Json::Str(completion.into())),
            ("cause", cause),
            ("shed", Json::Bool(self.shed)),
            ("products", Json::Uint(self.products)),
            ("evaluated", Json::Uint(self.evaluated)),
            ("cache_hits", Json::Uint(self.cache_hits)),
            ("cache_misses", Json::Uint(self.cache_misses)),
            ("memo_hits", Json::Uint(self.memo_hits)),
            ("dominance_tests", Json::Uint(self.dominance_tests)),
            ("queue_ns", Json::Uint(self.queue_nanos)),
            ("assemble_ns", Json::Uint(self.assemble_nanos)),
            ("exec_ns", Json::Uint(self.exec_nanos)),
            ("total_ns", Json::Uint(self.total_nanos)),
        ])
    }
}

/// A fixed-size ring of the last N completed traces.
///
/// Writers claim slots wait-free with a `fetch_add`; see the module
/// docs for the honest concurrency story.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Trace>>>,
    next: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` traces (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever recorded (not the current occupancy).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Stores `trace`, overwriting the oldest entry once the ring is
    /// full.
    pub fn record(&self, trace: Trace) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        // Poisoning cannot happen here (no panic while holding the
        // lock), but telemetry must never take the server down, so a
        // poisoned slot is simply skipped.
        if let Ok(mut guard) = self.slots[slot].lock() {
            *guard = Some(trace);
        }
    }

    /// The most recent `n` traces, newest first (by trace id — ids are
    /// minted at ingress, so this is arrival order, which under
    /// concurrent completion may differ slightly from completion
    /// order).
    pub fn dump(&self, n: usize) -> Vec<Trace> {
        let mut out: Vec<Trace> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().ok().and_then(|g| g.clone()))
            .collect();
        out.sort_by_key(|t| std::cmp::Reverse(t.id));
        out.truncate(n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn trace(id: u64) -> Trace {
        Trace {
            id: TraceId(id),
            class: TraceClass::QueryCold,
            epoch: 1,
            completion: Completion::Exact,
            shed: false,
            products: 1,
            evaluated: 1,
            cache_hits: 0,
            cache_misses: 1,
            memo_hits: 0,
            dominance_tests: 10,
            queue_nanos: 100,
            assemble_nanos: 0,
            exec_nanos: 1000,
            total_nanos: 1100,
        }
    }

    #[test]
    fn ring_keeps_last_n_newest_first() {
        let fr = FlightRecorder::new(4);
        for id in 0..10 {
            fr.record(trace(id));
        }
        assert_eq!(fr.recorded(), 10);
        let dumped = fr.dump(10);
        let ids: Vec<u64> = dumped.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![9, 8, 7, 6]);
        let ids: Vec<u64> = fr.dump(2).iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![9, 8]);
    }

    #[test]
    fn concurrent_writers_never_lose_the_newest() {
        let fr = Arc::new(FlightRecorder::new(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let fr = Arc::clone(&fr);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        fr.record(trace(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(fr.recorded(), 1000);
        let dumped = fr.dump(64);
        assert_eq!(dumped.len(), 64);
        // Newest-first and strictly decreasing ids.
        for w in dumped.windows(2) {
            assert!(w[0].id > w[1].id);
        }
    }

    #[test]
    fn trace_json_round_trips_the_interesting_fields() {
        use crate::exec::Interrupt;
        let mut t = trace(7);
        t.completion = Completion::Partial(Interrupt::DeadlineExceeded);
        t.total_nanos = (1u64 << 53) + 5; // exactness through Json::Uint
        let j = t.to_json();
        let parsed = crate::json::parse(&j.render()).unwrap();
        assert_eq!(parsed.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(
            parsed.get("class").and_then(Json::as_str),
            Some("query_cold")
        );
        assert_eq!(
            parsed.get("completion").and_then(Json::as_str),
            Some("partial")
        );
        assert_eq!(
            parsed.get("cause").and_then(Json::as_str),
            Some("deadline exceeded")
        );
        assert!(j
            .render()
            .contains(&format!("\"total_ns\":{}", t.total_nanos)));
    }

    #[test]
    fn class_names_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in TraceClass::ALL {
            assert!(seen.insert(c.name()));
            assert_eq!(TraceClass::ALL[c.index()], c);
        }
    }
}
