//! Criterion micro-benchmarks for the substrates: R-tree construction
//! and queries, the skyline algorithms, Algorithm 1, and the LBC
//! machinery. These are developer benchmarks, not paper figures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use skyup_core::cost::SumCost;
use skyup_core::join::{list_bound, BoundMode, LowerBound};
use skyup_core::{upgrade_single, UpgradeConfig};
use skyup_data::synthetic::{generate, Distribution, SyntheticConfig};
use skyup_geom::{PointStore, Rect};
use skyup_rtree::{EntryRef, RTree, RTreeParams};
use skyup_skyline::{dominating_skyline, skyline_bbs, skyline_bnl, skyline_naive, skyline_sfs};
use std::hint::black_box;

fn anti(n: usize, dims: usize, seed: u64) -> PointStore {
    generate(n, &SyntheticConfig::unit(dims, Distribution::AntiCorrelated, seed))
}

fn bench_rtree(c: &mut Criterion) {
    let store = anti(20_000, 3, 1);
    c.bench_function("rtree/bulk_load/20k", |b| {
        b.iter(|| RTree::bulk_load(black_box(&store), RTreeParams::default()))
    });

    let small = anti(2_000, 3, 2);
    c.bench_function("rtree/insert_build/2k", |b| {
        b.iter(|| RTree::from_insertion(black_box(&small), RTreeParams::default()))
    });

    let tree = RTree::bulk_load(&store, RTreeParams::default());
    let range = Rect::new(&[0.2, 0.2, 0.2], &[0.5, 0.5, 0.5]);
    c.bench_function("rtree/range_query/20k", |b| {
        b.iter(|| tree.range_query(black_box(&store), black_box(&range)))
    });
}

fn bench_skyline(c: &mut Criterion) {
    let store = anti(5_000, 3, 3);
    let ids: Vec<_> = store.ids().collect();
    let tree = RTree::bulk_load(&store, RTreeParams::default());

    c.bench_function("skyline/naive/1k", |b| {
        let small: Vec<_> = ids.iter().copied().take(1000).collect();
        b.iter(|| skyline_naive(black_box(&store), black_box(&small)))
    });
    c.bench_function("skyline/bnl/5k", |b| {
        b.iter(|| skyline_bnl(black_box(&store), black_box(&ids)))
    });
    c.bench_function("skyline/sfs/5k", |b| {
        b.iter(|| skyline_sfs(black_box(&store), black_box(&ids)))
    });
    c.bench_function("skyline/bbs/5k", |b| {
        b.iter(|| skyline_bbs(black_box(&store), black_box(&tree)))
    });
    c.bench_function("skyline/dominating/5k", |b| {
        b.iter(|| dominating_skyline(black_box(&store), black_box(&tree), &[0.9, 0.9, 0.9]))
    });
}

fn bench_upgrade(c: &mut Criterion) {
    let store = anti(5_000, 3, 4);
    let ids: Vec<_> = store.ids().collect();
    let skyline = skyline_sfs(&store, &ids);
    let cost = SumCost::reciprocal(3, 1e-3);
    let cfg = UpgradeConfig::default();
    let t = [1.5, 1.5, 1.5];
    c.bench_function(&format!("upgrade_single/skyline{}", skyline.len()), |b| {
        b.iter(|| upgrade_single(black_box(&store), black_box(&skyline), &t, &cost, &cfg))
    });
}

fn bench_lbc(c: &mut Criterion) {
    let store = anti(10_000, 3, 5);
    let tree = RTree::bulk_load(&store, RTreeParams::default());
    let jl: Vec<EntryRef> = tree.root().entries().collect();
    let cost = SumCost::reciprocal(3, 1e-3);
    let t_min = [1.2, 1.2, 1.2];
    for bound in LowerBound::ALL {
        c.bench_function(&format!("lbc/list_bound/{}", bound.abbrev()), |b| {
            b.iter_batched(
                || jl.clone(),
                |jl| {
                    list_bound(
                        black_box(&t_min),
                        &jl,
                        &store,
                        &tree,
                        &cost,
                        bound,
                        BoundMode::Paper,
                    )
                },
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(benches, bench_rtree, bench_skyline, bench_upgrade, bench_lbc);
criterion_main!(benches);
