//! Micro-benchmarks for the substrates: R-tree construction and
//! queries, the skyline algorithms, Algorithm 1, the LBC machinery, and
//! the instrumentation overhead spot-check. These are developer
//! benchmarks, not paper figures. Hand-rolled timing loops — criterion
//! is unavailable in this offline environment.
//!
//! ```sh
//! cargo bench --bench micro            # or: cargo run --release --bench micro
//! SKYUP_BENCH_MS=1000 cargo bench --bench micro   # longer sampling
//! ```

use skyup_bench::harness::microbench;
use skyup_core::cost::SumCost;
use skyup_core::join::{list_bound, BoundMode, LowerBound};
use skyup_core::{upgrade_single, UpgradeConfig};
use skyup_data::synthetic::{generate, Distribution, SyntheticConfig};
use skyup_geom::{PointStore, Rect};
use skyup_rtree::{EntryRef, RTree, RTreeParams};
use skyup_skyline::{dominating_skyline, skyline_bbs, skyline_bnl, skyline_naive, skyline_sfs};
use std::hint::black_box;

fn anti(n: usize, dims: usize, seed: u64) -> PointStore {
    generate(
        n,
        &SyntheticConfig::unit(dims, Distribution::AntiCorrelated, seed),
    )
}

fn bench_rtree() {
    let store = anti(20_000, 3, 1);
    microbench("rtree/bulk_load/20k", || {
        RTree::bulk_load(black_box(&store), RTreeParams::default())
    });

    let small = anti(2_000, 3, 2);
    microbench("rtree/insert_build/2k", || {
        RTree::from_insertion(black_box(&small), RTreeParams::default())
    });

    let tree = RTree::bulk_load(&store, RTreeParams::default());
    let range = Rect::new(&[0.2, 0.2, 0.2], &[0.5, 0.5, 0.5]);
    microbench("rtree/range_query/20k", || {
        tree.range_query(black_box(&store), black_box(&range))
    });
}

fn bench_skyline() {
    let store = anti(5_000, 3, 3);
    let ids: Vec<_> = store.ids().collect();
    let tree = RTree::bulk_load(&store, RTreeParams::default());

    let small: Vec<_> = ids.iter().copied().take(1000).collect();
    microbench("skyline/naive/1k", || {
        skyline_naive(black_box(&store), black_box(&small))
    });
    microbench("skyline/bnl/5k", || {
        skyline_bnl(black_box(&store), black_box(&ids))
    });
    microbench("skyline/sfs/5k", || {
        skyline_sfs(black_box(&store), black_box(&ids))
    });
    microbench("skyline/bbs/5k", || {
        skyline_bbs(black_box(&store), black_box(&tree))
    });
    microbench("skyline/dominating/5k", || {
        dominating_skyline(black_box(&store), black_box(&tree), &[0.9, 0.9, 0.9])
    });
}

fn bench_upgrade() {
    let store = anti(5_000, 3, 4);
    let ids: Vec<_> = store.ids().collect();
    let skyline = skyline_sfs(&store, &ids);
    let cost = SumCost::reciprocal(3, 1e-3);
    let cfg = UpgradeConfig::default();
    let t = [1.5, 1.5, 1.5];
    microbench(&format!("upgrade_single/skyline{}", skyline.len()), || {
        upgrade_single(black_box(&store), black_box(&skyline), &t, &cost, &cfg)
    });
}

fn bench_lbc() {
    let store = anti(10_000, 3, 5);
    let tree = RTree::bulk_load(&store, RTreeParams::default());
    let jl: Vec<EntryRef> = tree.root().entries().collect();
    let cost = SumCost::reciprocal(3, 1e-3);
    let t_min = [1.2, 1.2, 1.2];
    for bound in LowerBound::ALL {
        microbench(&format!("lbc/list_bound/{}", bound.abbrev()), || {
            list_bound(
                black_box(&t_min),
                &jl.clone(),
                &store,
                &tree,
                &cost,
                bound,
                BoundMode::Paper,
            )
        });
    }
}

/// Acceptance-criterion spot-check: improved probing with the
/// `NullRecorder` must be within noise of the uninstrumented timing,
/// and the collecting recorder's overhead should be visible but small.
fn bench_obs_overhead() {
    use skyup_core::probing::{improved_probing_topk, improved_probing_topk_rec};
    use skyup_obs::{NullRecorder, QueryMetrics};

    let p = generate(
        5_000,
        &SyntheticConfig::unit(3, Distribution::AntiCorrelated, 6),
    );
    let t = generate(
        200,
        &SyntheticConfig {
            dims: 3,
            distribution: Distribution::AntiCorrelated,
            lo: 1.0 + f64::EPSILON,
            hi: 2.0,
            seed: 7,
        },
    );
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let cost = SumCost::reciprocal(3, 1e-3);
    let cfg = UpgradeConfig::default();

    let legacy = microbench("obs/improved_probing/legacy_api", || {
        improved_probing_topk(black_box(&p), &rp, black_box(&t), 10, &cost, &cfg)
    });
    let null = microbench("obs/improved_probing/null_recorder", || {
        improved_probing_topk_rec(
            black_box(&p),
            &rp,
            black_box(&t),
            10,
            &cost,
            &cfg,
            &mut NullRecorder,
        )
    });
    let collecting = microbench("obs/improved_probing/query_metrics", || {
        let mut m = QueryMetrics::new();
        improved_probing_topk_rec(black_box(&p), &rp, black_box(&t), 10, &cost, &cfg, &mut m)
    });
    println!(
        "obs overhead: null/legacy = {:.3}x, collecting/legacy = {:.3}x",
        null.as_secs_f64() / legacy.as_secs_f64(),
        collecting.as_secs_f64() / legacy.as_secs_f64()
    );
}

fn main() {
    bench_rtree();
    bench_skyline();
    bench_upgrade();
    bench_lbc();
    bench_obs_overhead();
}
