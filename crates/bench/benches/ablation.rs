//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * STR bulk loading vs. one-at-a-time insertion as the index build for
//!   the join;
//! * R-tree fanout;
//! * the paper's LBC vs. the admissible bound mode;
//! * Algorithm 1 with and without the extended candidate set.
//!
//! Hand-rolled timing loops — criterion is unavailable in this offline
//! environment.

use skyup_bench::harness::microbench;
use skyup_core::cost::SumCost;
use skyup_core::join::{BoundMode, JoinUpgrader, LowerBound};
use skyup_core::{upgrade_single, UpgradeConfig};
use skyup_data::synthetic::{paper_competitors, paper_products, Distribution};
use skyup_geom::PointStore;
use skyup_rtree::{RTree, RTreeParams};
use skyup_skyline::skyline_sfs;
use std::hint::black_box;

const DIST: Distribution = Distribution::AntiCorrelated;

fn workload() -> (PointStore, PointStore) {
    (
        paper_competitors(20_000, 3, DIST, 11),
        paper_products(2_000, 3, DIST, 12),
    )
}

fn join_time(p: &PointStore, rp: &RTree, t: &PointStore, rt: &RTree, mode: BoundMode) -> usize {
    let cost = SumCost::reciprocal(p.dims(), 1e-3);
    let join = JoinUpgrader::new(
        p,
        rp,
        t,
        rt,
        &cost,
        UpgradeConfig::default(),
        LowerBound::Conservative,
    )
    .with_bound_mode(mode);
    join.take(5).count()
}

fn bench_build_strategy() {
    let (p, t) = workload();
    let params = RTreeParams::default();
    let rt = RTree::bulk_load(&t, params);

    let rp_str = RTree::bulk_load(&p, params);
    microbench("ablation/join_on_str_tree", || {
        black_box(join_time(&p, &rp_str, &t, &rt, BoundMode::Paper))
    });

    let rp_ins = RTree::from_insertion(&p, params);
    microbench("ablation/join_on_insertion_tree", || {
        black_box(join_time(&p, &rp_ins, &t, &rt, BoundMode::Paper))
    });
}

fn bench_fanout() {
    let (p, t) = workload();
    for fanout in [16usize, 64, 256] {
        let params = RTreeParams::with_max_entries(fanout);
        let rp = RTree::bulk_load(&p, params);
        let rt = RTree::bulk_load(&t, params);
        microbench(&format!("ablation/fanout/{fanout}"), || {
            black_box(join_time(&p, &rp, &t, &rt, BoundMode::Paper))
        });
    }
}

fn bench_bound_mode() {
    let (p, t) = workload();
    let params = RTreeParams::default();
    let rp = RTree::bulk_load(&p, params);
    let rt = RTree::bulk_load(&t, params);
    for (name, mode) in [
        ("paper", BoundMode::Paper),
        ("admissible", BoundMode::Admissible),
    ] {
        microbench(&format!("ablation/bound_mode/{name}"), || {
            black_box(join_time(&p, &rp, &t, &rt, mode))
        });
    }
}

fn bench_extended_candidates() {
    let (p, _) = workload();
    let ids: Vec<_> = p.ids().collect();
    let skyline = skyline_sfs(&p, &ids);
    let cost = SumCost::reciprocal(3, 1e-3);
    let t = [1.5, 1.5, 1.5];
    for (name, extended) in [("paper", false), ("extended", true)] {
        let cfg = UpgradeConfig {
            extended_candidates: extended,
            ..UpgradeConfig::default()
        };
        microbench(&format!("ablation/candidates/{name}"), || {
            upgrade_single(black_box(&p), black_box(&skyline), &t, &cost, &cfg)
        });
    }
}

fn main() {
    bench_build_strategy();
    bench_fanout();
    bench_bound_mode();
    bench_extended_candidates();
}
