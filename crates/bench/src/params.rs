//! The paper's parameter grids (Tables IV and V), with scaling applied.

use crate::harness::BenchArgs;

/// Table IV — small synthetic data sets (Figures 6–7). Defaults bold in
/// the paper: |P| = 1,000K, |T| = 100K, d = 2.
#[derive(Clone, Copy, Debug)]
pub struct SmallParams {
    /// Scaled default competitor cardinality.
    pub p_default: usize,
    /// Scaled default product cardinality.
    pub t_default: usize,
    /// Default dimensionality.
    pub d_default: usize,
}

impl SmallParams {
    /// Applies `args.scale` to Table IV's defaults.
    pub fn new(args: &BenchArgs) -> Self {
        Self {
            p_default: args.scaled(1_000_000),
            t_default: args.scaled(100_000),
            d_default: 2,
        }
    }

    /// The |P| sweep: 100K … 1,000K (paper), scaled.
    pub fn p_sweep(args: &BenchArgs) -> Vec<usize> {
        (1..=10).map(|i| args.scaled(i * 100_000)).collect()
    }

    /// The |T| sweep: 10K … 100K (paper), scaled.
    pub fn t_sweep(args: &BenchArgs) -> Vec<usize> {
        (1..=10).map(|i| args.scaled(i * 10_000)).collect()
    }

    /// The dimensionality sweep: 2 … 5.
    pub fn d_sweep() -> Vec<usize> {
        vec![2, 3, 4, 5]
    }
}

/// Table V — large synthetic data sets (Figures 8–11). Defaults bold in
/// the paper: |P| = 1,000K, |T| = 100K, d = 5.
#[derive(Clone, Copy, Debug)]
pub struct LargeParams {
    /// Scaled default competitor cardinality.
    pub p_default: usize,
    /// Scaled default product cardinality.
    pub t_default: usize,
    /// Default dimensionality.
    pub d_default: usize,
}

impl LargeParams {
    /// Applies `args.scale` to Table V's defaults.
    pub fn new(args: &BenchArgs) -> Self {
        Self {
            p_default: args.scaled(1_000_000),
            t_default: args.scaled(100_000),
            d_default: 5,
        }
    }

    /// The |P| sweep: 500K, 1,000K, 1,500K, 2,000K (paper), scaled.
    pub fn p_sweep(args: &BenchArgs) -> Vec<usize> {
        [500_000, 1_000_000, 1_500_000, 2_000_000]
            .iter()
            .map(|&n| args.scaled(n))
            .collect()
    }

    /// The |T| sweep: 50K, 100K, 150K, 200K (paper), scaled.
    pub fn t_sweep(args: &BenchArgs) -> Vec<usize> {
        [50_000, 100_000, 150_000, 200_000]
            .iter()
            .map(|&n| args.scaled(n))
            .collect()
    }

    /// The dimensionality sweep: 3 … 6.
    pub fn d_sweep() -> Vec<usize> {
        vec![3, 4, 5, 6]
    }
}

/// The `k` values of the progressiveness figures (5, 10, 11).
pub fn k_sweep() -> Vec<usize> {
    vec![1, 5, 10, 15, 20]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_scale_monotonically() {
        let args = BenchArgs {
            scale: 0.01,
            seed: 0,
        };
        let p = SmallParams::p_sweep(&args);
        assert_eq!(p.len(), 10);
        assert!(p.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(p[0], 1000);
        assert_eq!(p[9], 10_000);
        let large = LargeParams::new(&args);
        assert_eq!(large.p_default, 10_000);
        assert_eq!(large.d_default, 5);
    }

    #[test]
    fn k_sweep_matches_paper() {
        assert_eq!(k_sweep(), vec![1, 5, 10, 15, 20]);
    }
}
