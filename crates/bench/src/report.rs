//! Plain-text result tables printed by the figure binaries.

use std::fmt;

/// A simple aligned table: one per figure panel, with the same rows and
/// series the paper plots.
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the column count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        for (i, c) in self.columns.iter().enumerate() {
            write!(f, "{:<w$}  ", c, w = widths[i])?;
        }
        writeln!(f)?;
        for (i, _) in self.columns.iter().enumerate() {
            write!(f, "{:-<w$}  ", "", w = widths[i])?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:<w$}  ", cell, w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["x", "long column"]);
        t.row(&["1".into(), "a".into()]);
        t.row(&["200".into(), "bb".into()]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long column"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["only one".into()]);
    }
}
