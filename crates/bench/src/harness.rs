//! Timing and CLI plumbing shared by the figure binaries.

use std::time::{Duration, Instant};

/// Arguments common to every figure binary.
#[derive(Clone, Copy, Debug)]
pub struct BenchArgs {
    /// Cardinality multiplier relative to the paper's settings.
    pub scale: f64,
    /// Base RNG seed; sweeps derive per-point seeds from it.
    pub seed: u64,
}

/// Parses `--scale <f>` and `--seed <n>` from `std::env::args`, falling
/// back to the `SKYUP_SCALE` / `SKYUP_SEED` environment variables and
/// then to `default_scale` / `2012`.
///
/// # Panics
/// Panics with a usage message on malformed arguments.
pub fn parse_args(default_scale: f64) -> BenchArgs {
    let mut scale = std::env::var("SKYUP_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_scale);
    let mut seed = std::env::var("SKYUP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2012);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("usage: --scale <float>"));
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("usage: --seed <u64>"));
                i += 2;
            }
            other => panic!("unknown argument {other}; supported: --scale <f>, --seed <n>"),
        }
    }
    assert!(scale > 0.0, "scale must be positive");
    BenchArgs { scale, seed }
}

impl BenchArgs {
    /// Applies the scale to a paper cardinality, keeping at least 100
    /// points so every workload stays meaningful.
    pub fn scaled(&self, paper_cardinality: usize) -> usize {
        ((paper_cardinality as f64 * self.scale) as usize).max(100)
    }
}

/// Runs `f` once and returns `(duration, result)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// A minimal hand-rolled micro-benchmark (criterion is unavailable
/// offline): one warm-up call, then repeated timed calls until the
/// sample budget (`SKYUP_BENCH_MS`, default 300 ms per benchmark) is
/// spent. Prints and returns the median.
pub fn microbench<T>(name: &str, mut f: impl FnMut() -> T) -> Duration {
    let budget = Duration::from_millis(
        std::env::var("SKYUP_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300),
    );
    std::hint::black_box(f()); // warm-up
    let mut samples = Vec::new();
    let start = Instant::now();
    while samples.is_empty() || (start.elapsed() < budget && samples.len() < 10_000) {
        let (d, out) = time(&mut f);
        std::hint::black_box(out);
        samples.push(d);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{name:<44} median {:>12}  (n={})",
        fmt_duration(median),
        samples.len()
    );
    median
}

/// Formats a duration in adaptive units, matching how the paper's plots
/// span milliseconds to kiloseconds.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_cardinalities_floor_at_100() {
        let a = BenchArgs {
            scale: 0.001,
            seed: 0,
        };
        assert_eq!(a.scaled(1_000_000), 1000);
        assert_eq!(a.scaled(10_000), 100);
    }

    #[test]
    fn timing_returns_result() {
        let (d, v) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert!(fmt_duration(Duration::from_micros(7)).ends_with("µs"));
    }
}
