//! Benchmark harness regenerating every figure of the paper's
//! empirical study (Section IV).
//!
//! Each figure has a dedicated binary (`fig4` … `fig11`) that builds the
//! figure's workload, runs the algorithms the figure compares, and
//! prints the same series the paper plots. `all_figs` runs everything.
//!
//! Absolute times will differ from the paper (Rust on this machine vs.
//! Java on a 2011 desktop); the *shapes* — which algorithm wins, by
//! roughly what factor, and how curves grow — are what EXPERIMENTS.md
//! tracks.
//!
//! # Scale
//!
//! The paper's largest runs use |P| = 2,000,000. Every binary accepts a
//! `--scale <f>` argument (or the `SKYUP_SCALE` environment variable)
//! multiplying all cardinalities; each figure has a default chosen so a
//! full run finishes in minutes on a laptop. `--scale 1` reproduces
//! paper-scale cardinalities. The printed header always records the
//! scale used.

pub mod figures;
pub mod harness;
pub mod params;
pub mod report;
pub mod runner;

pub use harness::{fmt_duration, parse_args, time, BenchArgs};
pub use params::{k_sweep, LargeParams, SmallParams};
pub use report::Table;
