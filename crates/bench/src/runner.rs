//! Shared algorithm drivers for the figure binaries.

use skyup_core::cost::SumCost;
use skyup_core::join::{JoinUpgrader, LowerBound};
use skyup_core::{
    basic_probing_topk, basic_probing_topk_rec, improved_probing_topk, improved_probing_topk_rec,
    UpgradeConfig,
};
use skyup_geom::PointStore;
use skyup_obs::{QueryMetrics, Recorder};
use skyup_rtree::{RTree, RTreeParams};
use std::time::{Duration, Instant};

/// The attribute cost regularizer used across all experiments
/// (`f_a(v) = 1/(v + ε)`, Section IV-A).
pub const COST_EPS: f64 = 1e-3;

/// Builds the experiment cost function for `dims` dimensions.
pub fn cost_fn(dims: usize) -> SumCost {
    SumCost::reciprocal(dims, COST_EPS)
}

/// Bulk-loads the R-trees for both sets with default fanout. The paper
/// excludes data loading from its measurements; callers time only the
/// algorithm runs.
pub fn build_trees(p: &PointStore, t: &PointStore) -> (RTree, RTree) {
    (
        RTree::bulk_load(p, RTreeParams::default()),
        RTree::bulk_load(t, RTreeParams::default()),
    )
}

/// Times one basic-probing top-k run.
pub fn run_basic(p: &PointStore, rp: &RTree, t: &PointStore, k: usize) -> Duration {
    let f = cost_fn(p.dims());
    let start = Instant::now();
    let out = basic_probing_topk(p, rp, t, k, &f, &UpgradeConfig::default());
    let elapsed = start.elapsed();
    std::hint::black_box(out);
    elapsed
}

/// Times one improved-probing top-k run.
pub fn run_improved(p: &PointStore, rp: &RTree, t: &PointStore, k: usize) -> Duration {
    let f = cost_fn(p.dims());
    let start = Instant::now();
    let out = improved_probing_topk(p, rp, t, k, &f, &UpgradeConfig::default());
    let elapsed = start.elapsed();
    std::hint::black_box(out);
    elapsed
}

/// Times one join top-k run with the given lower bound.
pub fn run_join(
    p: &PointStore,
    rp: &RTree,
    t: &PointStore,
    rt: &RTree,
    k: usize,
    bound: LowerBound,
) -> Duration {
    let f = cost_fn(p.dims());
    let start = Instant::now();
    let join = JoinUpgrader::new(p, rp, t, rt, &f, UpgradeConfig::default(), bound);
    let out: Vec<_> = join.take(k).collect();
    let elapsed = start.elapsed();
    std::hint::black_box(out);
    elapsed
}

/// [`run_basic`] with instrumentation: also returns the run's counters
/// and per-phase timings.
pub fn run_basic_metrics(
    p: &PointStore,
    rp: &RTree,
    t: &PointStore,
    k: usize,
) -> (Duration, QueryMetrics) {
    let f = cost_fn(p.dims());
    let mut m = QueryMetrics::new();
    let start = Instant::now();
    let out = basic_probing_topk_rec(p, rp, t, k, &f, &UpgradeConfig::default(), &mut m);
    let elapsed = start.elapsed();
    std::hint::black_box(out);
    (elapsed, m)
}

/// [`run_improved`] with instrumentation.
pub fn run_improved_metrics(
    p: &PointStore,
    rp: &RTree,
    t: &PointStore,
    k: usize,
) -> (Duration, QueryMetrics) {
    let f = cost_fn(p.dims());
    let mut m = QueryMetrics::new();
    let start = Instant::now();
    let out = improved_probing_topk_rec(p, rp, t, k, &f, &UpgradeConfig::default(), &mut m);
    let elapsed = start.elapsed();
    std::hint::black_box(out);
    (elapsed, m)
}

/// [`run_join`] with instrumentation.
pub fn run_join_metrics(
    p: &PointStore,
    rp: &RTree,
    t: &PointStore,
    rt: &RTree,
    k: usize,
    bound: LowerBound,
) -> (Duration, QueryMetrics) {
    let f = cost_fn(p.dims());
    let mut m = QueryMetrics::new();
    let start = Instant::now();
    let mut join = JoinUpgrader::new(p, rp, t, rt, &f, UpgradeConfig::default(), bound);
    let out: Vec<_> = join.by_ref().take(k).collect();
    let elapsed = start.elapsed();
    m.absorb(join.metrics());
    std::hint::black_box(out);
    (elapsed, m)
}

/// Measures the join's progressiveness: for each `k` in `ks` (ascending),
/// the elapsed time from the start of the join until the `k`-th result
/// is available — exactly the measurement of Figures 5, 10, and 11.
pub fn progressive_times(
    p: &PointStore,
    rp: &RTree,
    t: &PointStore,
    rt: &RTree,
    ks: &[usize],
    bound: LowerBound,
) -> Vec<(usize, Duration)> {
    debug_assert!(ks.windows(2).all(|w| w[0] < w[1]), "ks must be ascending");
    let f = cost_fn(p.dims());
    let mut out = Vec::with_capacity(ks.len());
    let start = Instant::now();
    let mut join = JoinUpgrader::new(p, rp, t, rt, &f, UpgradeConfig::default(), bound);
    let mut produced = 0usize;
    for &k in ks {
        while produced < k {
            if join.next().is_none() {
                break;
            }
            produced += 1;
        }
        out.push((k, start.elapsed()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyup_data::synthetic::{paper_competitors, paper_products, Distribution};

    #[test]
    fn drivers_run_end_to_end() {
        let p = paper_competitors(2000, 2, Distribution::Independent, 1);
        let t = paper_products(300, 2, Distribution::Independent, 2);
        let (rp, rt) = build_trees(&p, &t);
        let d_basic = run_basic(&p, &rp, &t, 1);
        let d_imp = run_improved(&p, &rp, &t, 1);
        let d_join = run_join(&p, &rp, &t, &rt, 1, LowerBound::Conservative);
        assert!(d_basic.as_nanos() > 0 && d_imp.as_nanos() > 0 && d_join.as_nanos() > 0);
        let prog = progressive_times(&p, &rp, &t, &rt, &[1, 5, 10], LowerBound::Naive);
        assert_eq!(prog.len(), 3);
        assert!(prog.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
