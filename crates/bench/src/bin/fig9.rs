//! Figure 9: large synthetic data sets with independent dimensions —
//! the join under NLB / CLB / ALB. Panels: vary |P|, vary |T|, vary d.

use skyup_bench::figures::large_figure;
use skyup_bench::parse_args;
use skyup_data::synthetic::Distribution;

fn main() {
    let args = parse_args(0.05);
    println!("Figure 9 — independent large synthetic");
    large_figure(Distribution::Independent, &args);
}
