//! Figure 11: progressiveness on the large independent workload — time
//! to the k-th result, k = 1..20, under each lower bound.

use skyup_bench::figures::progressive_figure;
use skyup_bench::parse_args;
use skyup_data::synthetic::Distribution;

fn main() {
    let args = parse_args(0.05);
    println!("Figure 11 — progressiveness, independent");
    progressive_figure(Distribution::Independent, &args);
}
