//! Figure 5: progressiveness of the join on the wine data set with the
//! c,s,t attribute combination — time until k = 1, 5, 10, 15, 20
//! results are available, for each lower bound.

use skyup_bench::runner::{build_trees, progressive_times};
use skyup_bench::{fmt_duration, k_sweep, parse_args, Table};
use skyup_core::join::LowerBound;
use skyup_data::wine::WineAttr;
use skyup_data::{split_products, wine_dataset};

fn main() {
    let args = parse_args(1.0);
    println!(
        "Figure 5 — progressiveness on wine (c,s,t), k = 1..20 (seed {})",
        args.seed
    );

    let attrs = [
        WineAttr::Chlorides,
        WineAttr::Sulphates,
        WineAttr::TotalSulfurDioxide,
    ];
    let full = wine_dataset(&attrs, args.seed);
    let (p, t) = split_products(&full, 1000, args.seed);
    let (rp, rt) = build_trees(&p, &t);

    let ks = k_sweep();
    let mut table = Table::new("Time to k-th result", &["k", "NLB", "CLB", "ALB"]);
    let series: Vec<Vec<(usize, std::time::Duration)>> = LowerBound::ALL
        .iter()
        .map(|&b| progressive_times(&p, &rp, &t, &rt, &ks, b))
        .collect();
    for (i, &k) in ks.iter().enumerate() {
        table.row(&[
            k.to_string(),
            fmt_duration(series[0][i].1),
            fmt_duration(series[1][i].1),
            fmt_duration(series[2][i].1),
        ]);
    }
    println!("{table}");
    println!("expected shape: all bounds steady as k grows; CLB best overall");
}
