//! Figure 4: execution time on the four wine attribute combinations
//! (Table III), comparing basic probing, improved probing, and the join
//! with all three lower bounds. |P| = 3,898, |T| = 1,000, k = 1.

use skyup_bench::runner::{
    build_trees, run_basic, run_basic_metrics, run_improved, run_improved_metrics, run_join,
    run_join_metrics,
};
use skyup_bench::{fmt_duration, parse_args, Table};
use skyup_core::join::LowerBound;
use skyup_data::wine::WineAttr;
use skyup_data::{split_products, wine_dataset};
use skyup_obs::Counter;

fn main() {
    // The wine experiment always runs at full size (4,898 tuples).
    let args = parse_args(1.0);
    println!("Figure 4 — wine data set, k = 1 (seed {})", args.seed);

    let mut table = Table::new(
        "Execution time per attribute combination",
        &[
            "attrs", "basic", "improved", "join-NLB", "join-CLB", "join-ALB",
        ],
    );
    let mut counters = Table::new(
        "Work counters per attribute combination (basic | improved | join-CLB)",
        &["attrs", "dom-tests", "entry-accesses", "node-accesses"],
    );

    for attrs in WineAttr::table_three() {
        let label: String = attrs
            .iter()
            .map(|a| a.abbrev())
            .collect::<Vec<_>>()
            .join(",");
        let full = wine_dataset(&attrs, args.seed);
        let (p, t) = split_products(&full, 1000, args.seed);
        let (rp, rt) = build_trees(&p, &t);

        let basic = run_basic(&p, &rp, &t, 1);
        let improved = run_improved(&p, &rp, &t, 1);
        let joins: Vec<_> = LowerBound::ALL
            .iter()
            .map(|&b| run_join(&p, &rp, &t, &rt, 1, b))
            .collect();

        table.row(&[
            label.clone(),
            fmt_duration(basic),
            fmt_duration(improved),
            fmt_duration(joins[0]),
            fmt_duration(joins[1]),
            fmt_duration(joins[2]),
        ]);

        // Machine-independent cost-model counters for the same workload
        // (Section V argues in exactly these units).
        let (_, mb) = run_basic_metrics(&p, &rp, &t, 1);
        let (_, mi) = run_improved_metrics(&p, &rp, &t, 1);
        let (_, mj) = run_join_metrics(&p, &rp, &t, &rt, 1, LowerBound::Conservative);
        let tri = |c: Counter| format!("{} | {} | {}", mb.get(c), mi.get(c), mj.get(c));
        counters.row(&[
            label,
            tri(Counter::DominanceTests),
            tri(Counter::RtreeEntryAccesses),
            tri(Counter::RtreeNodeAccesses),
        ]);
    }
    println!("{table}");
    println!("{counters}");
    println!(
        "expected shape: basic slowest; improved cuts 1/3-1/2; join fastest; \
         bounds differ only modestly on this small data set"
    );
}
