//! Figure 10: progressiveness on the large anti-correlated workload —
//! time to the k-th result, k = 1..20, under each lower bound.

use skyup_bench::figures::progressive_figure;
use skyup_bench::parse_args;
use skyup_data::synthetic::Distribution;

fn main() {
    let args = parse_args(0.05);
    println!("Figure 10 — progressiveness, anti-correlated");
    progressive_figure(Distribution::AntiCorrelated, &args);
}
