//! Figure 8: large synthetic data sets with anti-correlated dimensions —
//! the join under NLB / CLB / ALB. Panels: vary |P|, vary |T|, vary d.
//!
//! Only the (fast) join runs here, so the default scale is 0.05; pass
//! `--scale 1` for the paper's 2,000K-point runs.

use skyup_bench::figures::large_figure;
use skyup_bench::parse_args;
use skyup_data::synthetic::Distribution;

fn main() {
    let args = parse_args(0.05);
    println!("Figure 8 — anti-correlated large synthetic");
    large_figure(Distribution::AntiCorrelated, &args);
}
