//! Serving throughput: queries per second through the `skyup-serve`
//! worker pool at 1 and 4 client threads, cold cache vs warm, as JSON.
//!
//! The workload is a fig8-style synthetic: independent-uniform competitors on the
//! unit cube and a fixed pool of uncompetitive products shifted to
//! `[0.3, 1.3]`. The cold phase queries every pool product exactly once
//! (all misses, each answer computed from the epoch snapshot); the warm
//! phases re-query the same pool (all hits). Every warm answer is
//! checked bit-for-bit against its cold counterpart before the timing
//! is trusted — a cache that serves stale bits fails the bench, it does
//! not get a throughput number.
//!
//! Wall-clock qps is the machine-dependent half of the output; the
//! cache hit/miss counters are the machine-independent half. Set
//! `SKYUP_BENCH_OUT` to redirect the report (CI smoke runs do).

use skyup_bench::parse_args;
use skyup_data::synthetic::{generate, Distribution, SyntheticConfig};
use skyup_obs::json::Json;
use skyup_obs::{Completion, Counter};
use skyup_serve::{CostSpec, Engine, EngineConfig, QueryRequest, ServeConfig, ServeHandle};
use std::sync::Arc;
use std::time::Instant;

const DIMS: usize = 3;
/// Warm passes over the product pool per configuration.
const WARM_PASSES: usize = 4;

fn product_pool(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut cfg = SyntheticConfig::unit(DIMS, Distribution::Independent, seed);
    cfg.lo = 0.3;
    cfg.hi = 1.3;
    let store = generate(n, &cfg);
    store.ids().map(|id| store.point(id).to_vec()).collect()
}

/// Runs one timed pass: `threads` clients split the pool's products
/// (each product queried exactly once per pass) and push them through
/// the worker pool. Returns (elapsed_seconds, per-product cost bits).
fn timed_pass(handle: &ServeHandle, pool: &Arc<Vec<Vec<f64>>>, threads: usize) -> (f64, Vec<u64>) {
    let start = Instant::now();
    let mut joins = Vec::new();
    for c in 0..threads {
        let handle = handle.clone();
        let pool = Arc::clone(pool);
        joins.push(std::thread::spawn(move || {
            let mut costs = Vec::new();
            let mut i = c;
            while i < pool.len() {
                let resp = handle
                    .query(QueryRequest {
                        products: vec![pool[i].clone()],
                        k: 1,
                        cost: CostSpec::Reciprocal(1e-3),
                        max_products: None,
                        deadline: None,
                    })
                    .expect("valid query");
                assert!(
                    matches!(resp.completion, Completion::Exact),
                    "unlimited query came back partial"
                );
                costs.push((i, resp.results[0].cost.to_bits()));
                i += threads;
            }
            costs
        }));
    }
    let mut costs = vec![0u64; pool.len()];
    for join in joins {
        for (i, bits) in join.join().expect("client thread") {
            costs[i] = bits;
        }
    }
    (start.elapsed().as_secs_f64(), costs)
}

fn main() {
    let args = parse_args(1.0);
    let n_comp = ((4000.0 * args.scale) as usize).max(64);
    let n_pool = ((256.0 * args.scale) as usize).max(16);
    let competitors = generate(
        n_comp,
        &SyntheticConfig::unit(DIMS, Distribution::Independent, args.seed),
    );
    let pool = Arc::new(product_pool(n_pool, args.seed ^ 0x7007));

    let mut runs = Vec::new();
    let mut all_identical = true;
    for threads in [1usize, 4] {
        // Fresh engine per configuration so every cold phase is cold.
        let engine = Arc::new(Engine::with_competitors(
            competitors.clone(),
            EngineConfig::default(),
        ));
        let handle = ServeHandle::start(
            Arc::clone(&engine),
            ServeConfig {
                threads,
                queue_cap: 4 * threads.max(16),
            },
        );

        let phase_row = |phase: &str, elapsed: f64, requests: usize, hit: u64, miss: u64| {
            let total = (hit + miss).max(1);
            Json::obj(vec![
                ("threads", Json::Num(threads as f64)),
                ("phase", Json::Str(phase.into())),
                ("requests", Json::Num(requests as f64)),
                ("elapsed_ms", Json::Num(elapsed * 1e3)),
                ("qps", Json::Num(requests as f64 / elapsed.max(1e-9))),
                ("cache_hit", Json::Num(hit as f64)),
                ("cache_miss", Json::Num(miss as f64)),
                ("hit_rate", Json::Num(hit as f64 / total as f64)),
            ])
        };

        let before = engine.metrics();
        let (cold_s, cold_costs) = timed_pass(&handle, &pool, threads);
        let after = engine.metrics();
        runs.push(phase_row(
            "cold",
            cold_s,
            pool.len(),
            after.get(Counter::CacheHit) - before.get(Counter::CacheHit),
            after.get(Counter::CacheMiss) - before.get(Counter::CacheMiss),
        ));

        let before = engine.metrics();
        let mut warm_s = 0.0;
        for _ in 0..WARM_PASSES {
            let (s, warm_costs) = timed_pass(&handle, &pool, threads);
            warm_s += s;
            all_identical &= warm_costs == cold_costs;
        }
        let after = engine.metrics();
        runs.push(phase_row(
            "warm",
            warm_s,
            WARM_PASSES * pool.len(),
            after.get(Counter::CacheHit) - before.get(Counter::CacheHit),
            after.get(Counter::CacheMiss) - before.get(Counter::CacheMiss),
        ));
        handle.shutdown();
    }

    let doc = Json::obj(vec![
        (
            "workload",
            Json::obj(vec![
                ("competitors", Json::Num(n_comp as f64)),
                ("product_pool", Json::Num(n_pool as f64)),
                ("dims", Json::Num(DIMS as f64)),
                ("warm_passes", Json::Num(WARM_PASSES as f64)),
                ("scale", Json::Num(args.scale)),
                ("seed", Json::Num(args.seed as f64)),
            ]),
        ),
        ("runs", Json::Arr(runs)),
        ("warm_bit_identical_to_cold", Json::Bool(all_identical)),
    ]);

    let path = std::env::var("SKYUP_BENCH_OUT")
        .unwrap_or_else(|_| "bench_results/BENCH_serve.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&path, format!("{}\n", doc.render_pretty()))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");

    assert!(
        all_identical,
        "warm (cached) answers diverged from the cold computation"
    );
}
