//! Serving throughput: queries per second through `skyup-serve` at 1
//! and 4 client threads, cold cache vs warm, per-request execution vs
//! the batch dispatcher, as JSON.
//!
//! The workload is a fig8-style synthetic: anti-correlated competitors
//! on the unit cube — the paper's hardest setting, with a large skyline
//! that makes each answer genuinely expensive — and a fixed pool of
//! uncompetitive products shifted to `[0.3, 1.3]`. A cold pass queries every pool product exactly
//! once (all misses, each answer computed from the epoch snapshot); a
//! warm pass re-queries the same pool (all hits). Both modes run the
//! same pipelined client loop — each client keeps a window of requests
//! in flight — so the only variable is how the server schedules them:
//! `per_request` is the classic worker pool, `batched` is the admission
//! window + shard-parallel batch executor. Each phase is measured
//! min-of-N ([`COLD_REPS`] / [`WARM_PASSES`]) to reject scheduler noise
//! on shared hardware.
//!
//! Correctness is part of the bench contract: every warm answer and
//! every batched answer is checked bit-for-bit against the per-request
//! cold computation before any timing is trusted — a scheduler that
//! changes a single bit fails the bench, it does not get a throughput
//! number.
//!
//! Wall-clock qps is the machine-dependent half of the output; the
//! cache and batch counters are the machine-independent half. Set
//! `SKYUP_BENCH_OUT` to redirect the report (CI smoke runs do).
//!
//! Request tracing is **enabled** throughout: every qps figure already
//! includes the telemetry layer's per-request overhead (one histogram
//! lock, one flight-recorder slot, two counter bumps), so the gate's
//! qps floor holds with observability on, not in a stripped build. The
//! report's `latency` rows snapshot each configuration's per-class
//! histograms; their class counts are exact functions of the workload
//! (`1` cold pass + [`WARM_PASSES`] warm passes over the pool on the
//! surviving engine) and the gate checks them exactly, alongside the
//! structural invariants (bucket-count conservation, trace count ==
//! requests served). The slow-query threshold is 0 here so slow-log
//! contents stay machine-independent (empty: nothing sheds or cuts).
//!
//! Durability is **on** for every query engine (`--fsync interval:64`
//! against a throwaway directory), so the qps floors hold with the WAL
//! attached. A separate `durability` section measures acked-mutation
//! throughput under each fsync policy and the recovery replay rate,
//! with the machine-independent invariants (appends == acked
//! mutations, recovered-state checksum equality, zero torn tail after
//! a clean shutdown) emitted for the gate to pin.

use skyup_bench::parse_args;
use skyup_data::synthetic::{generate, Distribution, SyntheticConfig};
use skyup_data::Rng;
use skyup_geom::PointStore;
use skyup_obs::json::Json;
use skyup_obs::{Completion, Counter};
use skyup_rtree::persist::fnv1a;
use skyup_serve::proto::render_query_response;
use skyup_serve::{
    execute_query, Coordinator, CostSpec, Engine, EngineConfig, FsyncPolicy, LocalLink, Mutation,
    Partition, ProbeRequest, QueryRequest, ServeConfig, ServeHandle, ShardState, WalConfig,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const DIMS: usize = 3;
/// Cold repetitions per configuration, each against a fresh engine; the
/// reported cold figure is the fastest repetition. A single cold pass
/// is a few milliseconds — too short to survive scheduler noise on a
/// shared box — and min-of-N is the standard noise rejection: external
/// interference only ever slows a run down.
const COLD_REPS: usize = 3;
/// Warm passes over the product pool per configuration; the reported
/// warm figure is the fastest pass, for the same reason.
const WARM_PASSES: usize = 4;
/// Requests each client keeps in flight. This is what gives the batch
/// dispatcher's admission window something to coalesce; the per-request
/// pool sees the identical feed.
const PIPELINE: usize = 64;
/// Admission window for the batched mode, in microseconds.
const BATCH_WINDOW_US: u64 = 100;

/// Root for the run's throwaway WAL directories (one per engine).
fn wal_root() -> PathBuf {
    std::env::temp_dir().join(format!("skyup-bench-wal-{}", std::process::id()))
}

/// A query-workload engine with the WAL attached at `--fsync
/// interval:64` — the recommended serving configuration — so every qps
/// figure (and the gate's 1.5x batched/cold floor) is measured with
/// durability on, not in a stripped build. Each engine gets a fresh
/// subdirectory; the workload is query-only, so the log stays empty,
/// but the durable checkpoint write and the WAL lock are in place.
fn durable_engine(competitors: &PointStore, tag: String) -> Engine {
    let dir = wal_root().join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let wal_cfg = WalConfig {
        fsync: FsyncPolicy::Interval(64),
        ..WalConfig::new(dir)
    };
    Engine::with_durability(competitors.clone(), EngineConfig::default(), wal_cfg)
        .expect("fresh bench wal directory")
}

fn product_pool(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut cfg = SyntheticConfig::unit(DIMS, Distribution::Independent, seed);
    cfg.lo = 0.3;
    cfg.hi = 1.3;
    let store = generate(n, &cfg);
    store.ids().map(|id| store.point(id).to_vec()).collect()
}

/// Runs one timed pass: `threads` clients split the pool's products
/// (each product queried exactly once per pass) and push them through
/// the server with up to [`PIPELINE`] requests in flight each. Returns
/// (elapsed_seconds, per-product cost bits).
fn timed_pass(handle: &ServeHandle, pool: &Arc<Vec<Vec<f64>>>, threads: usize) -> (f64, Vec<u64>) {
    let start = Instant::now();
    let mut joins = Vec::new();
    for c in 0..threads {
        let handle = handle.clone();
        let pool = Arc::clone(pool);
        joins.push(std::thread::spawn(move || {
            let mut costs = Vec::new();
            let mut inflight = std::collections::VecDeque::new();
            let drain = |q: &mut std::collections::VecDeque<(usize, _)>| {
                let (i, ticket): (usize, skyup_serve::QueryTicket) =
                    q.pop_front().expect("non-empty pipeline");
                let resp = ticket.wait().expect("valid query");
                assert!(
                    matches!(resp.completion, Completion::Exact),
                    "unlimited query came back partial"
                );
                (i, resp.results[0].cost.to_bits())
            };
            let mut i = c;
            while i < pool.len() {
                if inflight.len() >= PIPELINE {
                    costs.push(drain(&mut inflight));
                }
                let ticket = handle
                    .query_async(QueryRequest {
                        products: vec![pool[i].clone()],
                        k: 1,
                        cost: CostSpec::Reciprocal(1e-3),
                        max_products: None,
                        deadline: None,
                    })
                    .expect("valid query");
                inflight.push_back((i, ticket));
                i += threads;
            }
            while !inflight.is_empty() {
                costs.push(drain(&mut inflight));
            }
            costs
        }));
    }
    let mut costs = vec![0u64; pool.len()];
    for join in joins {
        for (i, bits) in join.join().expect("client thread") {
            costs[i] = bits;
        }
    }
    (start.elapsed().as_secs_f64(), costs)
}

fn main() {
    let args = parse_args(1.0);
    let n_comp = ((4000.0 * args.scale) as usize).max(64);
    let n_pool = ((1024.0 * args.scale) as usize).max(16);
    let competitors = generate(
        n_comp,
        &SyntheticConfig::unit(DIMS, Distribution::AntiCorrelated, args.seed),
    );
    let pool = Arc::new(product_pool(n_pool, args.seed ^ 0x7007));

    let mut runs = Vec::new();
    let mut latency = Vec::new();
    let mut all_identical = true;
    // Per-request cold bits at any thread count are the reference every
    // other configuration must reproduce exactly.
    let mut reference_bits: Option<Vec<u64>> = None;
    // qps by (mode, threads, phase) for the speedup summary.
    let mut qps = std::collections::HashMap::new();
    for mode in ["per_request", "batched"] {
        for threads in [1usize, 4] {
            let serve_cfg = ServeConfig {
                threads,
                // Room for every client's full pipeline: shedding
                // would fail the Exact assertion, not skew timing.
                queue_cap: threads * PIPELINE + 8,
                batch_window_us: if mode == "batched" {
                    BATCH_WINDOW_US
                } else {
                    0
                },
                max_batch: 4 * PIPELINE,
                // No latency threshold: the slow log would otherwise
                // depend on machine speed, and nothing here sheds or
                // runs partial, so it stays deterministically empty.
                slow_ms: 0,
                trace_buffer: 256,
            };

            // `passes` divides the counter deltas when the window spans
            // several identical passes, so every row's counters describe
            // one pass over the pool.
            let phase_row = |phase: &str,
                             elapsed: f64,
                             requests: usize,
                             passes: u64,
                             before: &skyup_obs::QueryMetrics,
                             after: &skyup_obs::QueryMetrics| {
                let delta = |c: Counter| (after.get(c) - before.get(c)) / passes;
                let hit = delta(Counter::CacheHit);
                let miss = delta(Counter::CacheMiss);
                let total = (hit + miss).max(1);
                Json::obj(vec![
                    ("mode", Json::Str(mode.into())),
                    ("threads", Json::Num(threads as f64)),
                    ("phase", Json::Str(phase.into())),
                    ("requests", Json::Num(requests as f64)),
                    ("elapsed_ms", Json::Num(elapsed * 1e3)),
                    ("qps", Json::Num(requests as f64 / elapsed.max(1e-9))),
                    ("cache_hit", Json::Num(hit as f64)),
                    ("cache_miss", Json::Num(miss as f64)),
                    ("hit_rate", Json::Num(hit as f64 / total as f64)),
                    (
                        "batches_executed",
                        Json::Num(delta(Counter::BatchesExecuted) as f64),
                    ),
                    (
                        "batched_requests",
                        Json::Num(delta(Counter::BatchedRequests) as f64),
                    ),
                    (
                        "dominator_memo_hits",
                        Json::Num(delta(Counter::DominatorMemoHits) as f64),
                    ),
                ])
            };

            // Cold: [`COLD_REPS`] repetitions, each against a fresh
            // engine so every pass really is cold; keep the fastest.
            // The last repetition's engine stays up for the warm phase.
            let mut cold_best = f64::INFINITY;
            let mut cold_costs: Vec<u64> = Vec::new();
            let mut cold_metrics = None;
            let mut warm_setup = None;
            for rep in 0..COLD_REPS {
                let engine = Arc::new(durable_engine(
                    &competitors,
                    format!("{mode}-{threads}t-rep{rep}"),
                ));
                let handle = ServeHandle::start(Arc::clone(&engine), serve_cfg);
                let before = engine.metrics();
                let (s, costs) = timed_pass(&handle, &pool, threads);
                let after = engine.metrics();
                cold_best = cold_best.min(s);
                match &reference_bits {
                    None => reference_bits = Some(costs.clone()),
                    Some(reference) => all_identical &= &costs == reference,
                }
                if rep + 1 == COLD_REPS {
                    cold_costs = costs;
                    cold_metrics = Some((before, after));
                    warm_setup = Some((engine, handle));
                } else {
                    handle.shutdown();
                }
            }
            let (before, after) = cold_metrics.expect("at least one cold repetition");
            runs.push(phase_row("cold", cold_best, pool.len(), 1, &before, &after));
            qps.insert(
                (mode, threads, "cold"),
                pool.len() as f64 / cold_best.max(1e-9),
            );

            // Warm: every pass re-queries the now-cached pool; keep the
            // fastest pass.
            let (engine, handle) = warm_setup.expect("warm engine");
            let before = engine.metrics();
            let mut warm_best = f64::INFINITY;
            for _ in 0..WARM_PASSES {
                let (s, warm_costs) = timed_pass(&handle, &pool, threads);
                warm_best = warm_best.min(s);
                all_identical &= warm_costs == cold_costs;
            }
            let after = engine.metrics();
            runs.push(phase_row(
                "warm",
                warm_best,
                pool.len(),
                WARM_PASSES as u64,
                &before,
                &after,
            ));
            qps.insert(
                (mode, threads, "warm"),
                pool.len() as f64 / warm_best.max(1e-9),
            );
            handle.shutdown();

            // Telemetry snapshot of the surviving engine's handle: it
            // served exactly one cold pass plus the warm passes, so the
            // per-class trace counts are pure functions of the workload
            // and the gate can check them exactly.
            latency.push(Json::obj(vec![
                ("mode", Json::Str(mode.into())),
                ("threads", Json::Num(threads as f64)),
                (
                    "requests_served",
                    Json::Uint(((1 + WARM_PASSES) * pool.len()) as u64),
                ),
                (
                    "metrics",
                    handle.telemetry().metrics_json(handle.queue_depth()),
                ),
            ]));
        }
    }

    // Durability: acked-mutation throughput under each fsync policy,
    // then the recovery replay rate over the interval policy's log.
    // The timing is the machine-dependent half; the counters and the
    // recovered-state checksum are machine-independent and the gate
    // pins them exactly: WalAppends == acked mutations, fsync counts
    // are pure functions of the policy, the recovered snapshot hashes
    // identically to the pre-crash engine, and a clean shutdown leaves
    // no torn tail.
    let n_base = ((512.0 * args.scale) as usize).max(32);
    let durable_base = generate(
        n_base,
        &SyntheticConfig::unit(DIMS, Distribution::AntiCorrelated, args.seed ^ 0xBA5E),
    );
    let mut durability = Vec::new();
    let mut recovery_replay = None;
    let policies: [(&str, FsyncPolicy, usize); 3] = [
        ("always", FsyncPolicy::Always, 512),
        ("interval:64", FsyncPolicy::Interval(64), 2048),
        ("never", FsyncPolicy::Never, 2048),
    ];
    for (name, policy, muts) in policies {
        let muts = ((muts as f64 * args.scale) as usize).max(64);
        let dir = wal_root().join(format!("policy-{}", name.replace(':', "-")));
        let _ = std::fs::remove_dir_all(&dir);
        let wal_cfg = WalConfig {
            fsync: policy,
            // Keep the whole history in the log: the recovery benchmark
            // below replays every record instead of a checkpoint tail.
            checkpoint_every: 0,
            ..WalConfig::new(dir)
        };
        let engine = Engine::with_durability(
            durable_base.clone(),
            EngineConfig::default(),
            wal_cfg.clone(),
        )
        .expect("fresh bench wal directory");
        let mut rng = Rng::seed_from_u64(args.seed ^ 0xF00D);
        let adds: Vec<Mutation> = (0..muts)
            .map(|_| Mutation::AddCompetitor((0..DIMS).map(|_| rng.next_f64()).collect()))
            .collect();
        let start = Instant::now();
        for m in adds {
            engine.apply(m).expect("acked mutation");
        }
        let elapsed = start.elapsed().as_secs_f64();
        engine.flush_wal().expect("clean shutdown flush");
        let m = engine.metrics();
        durability.push(Json::obj(vec![
            ("policy", Json::Str(name.into())),
            ("mutations", Json::Uint(muts as u64)),
            ("elapsed_ms", Json::Num(elapsed * 1e3)),
            ("mps", Json::Num(muts as f64 / elapsed.max(1e-9))),
            ("wal_appends", Json::Uint(m.get(Counter::WalAppends))),
            ("wal_bytes", Json::Uint(m.get(Counter::WalBytes))),
            ("wal_fsyncs", Json::Uint(m.get(Counter::WalFsyncs))),
        ]));

        if name == "interval:64" {
            let checksum = fnv1a(&engine.save_snapshot_bytes());
            drop(engine);
            let start = Instant::now();
            let recovered = Engine::recover(EngineConfig::default(), wal_cfg)
                .expect("recover the interval log");
            let elapsed = start.elapsed().as_secs_f64();
            let status = recovered.durability().expect("recovered engine has a wal");
            recovery_replay = Some(Json::obj(vec![
                ("replayed", Json::Uint(status.recovery.replayed)),
                ("elapsed_ms", Json::Num(elapsed * 1e3)),
                (
                    "replay_rps",
                    Json::Num(status.recovery.replayed as f64 / elapsed.max(1e-9)),
                ),
                ("torn_truncated", Json::Uint(status.recovery.torn_truncated)),
                (
                    "checksum_equal",
                    Json::Bool(fnv1a(&recovered.save_snapshot_bytes()) == checksum),
                ),
            ]));
        }
    }

    // Scatter/gather: the multi-shard coordinator over in-process shard
    // links at 1, 2 and 4 shards. The machine-dependent half is gather
    // qps/p99 and two-phase publish throughput; the machine-independent
    // half is bit-identity against a single-engine oracle holding the
    // full set, the exact scatter-fanout and merge-filter counters, and
    // a sampled per-shard-sum >= union >= merged-skyline chain the gate
    // pins exactly.
    let sg_mutations = ((64.0 * args.scale) as usize).max(8);
    let sg_checks = (pool.len() / 4).clamp(8.min(pool.len()), pool.len());
    let mut scatter_gather = Vec::new();
    let mut sg_identical = true;
    for shards in [1u32, 2, 4] {
        let partition = Partition::new(shards).expect("shard count");
        let mut links = Vec::new();
        let mut states = Vec::new();
        for id in 0..shards {
            let (slab, cid_of) = partition.shard_seed(&competitors, id);
            let engine = Engine::with_identified_competitors(
                slab,
                cid_of,
                competitors.len() as u64,
                EngineConfig::default(),
            )
            .expect("seed slab");
            let state = Arc::new(ShardState::new(
                ServeHandle::start(
                    Arc::new(engine),
                    ServeConfig {
                        slow_ms: 0,
                        ..ServeConfig::default()
                    },
                ),
                id,
                shards,
            ));
            links.push(LocalLink(Arc::clone(&state)));
            states.push(state);
        }
        let coordinator = Coordinator::new(links, partition, &competitors).expect("topology");
        let oracle = Engine::with_competitors(competitors.clone(), EngineConfig::default());

        // Two-phase publish throughput, mirrored into the oracle so the
        // identity checks below run at the same epoch.
        let mut rng = Rng::seed_from_u64(args.seed ^ 0x5ca77e4);
        let adds: Vec<Vec<f64>> = (0..sg_mutations)
            .map(|_| (0..DIMS).map(|_| rng.next_f64()).collect())
            .collect();
        let start = Instant::now();
        for p in &adds {
            coordinator
                .mutate(Mutation::AddCompetitor(p.clone()))
                .expect("published add");
        }
        let publish_s = start.elapsed().as_secs_f64();
        for p in adds {
            oracle
                .apply(Mutation::AddCompetitor(p))
                .expect("oracle add");
        }

        // Bit-identity self-check: the gathered response line must be
        // byte-for-byte the oracle's.
        let request = |t: &Vec<f64>| QueryRequest {
            products: vec![t.clone()],
            k: 1,
            cost: CostSpec::Reciprocal(1e-3),
            max_products: None,
            deadline: None,
        };
        for t in pool.iter().take(sg_checks) {
            let got = coordinator.query(&request(t)).expect("gathered");
            let want = execute_query(&oracle, &request(t)).expect("oracle");
            sg_identical &= render_query_response(&got) == render_query_response(&want);
        }

        // Merge-filter sample on one product: per-shard dominator counts
        // (probed directly) against the gathered union and the merged
        // skyline the coordinator's counters report for the same query.
        let sample = ProbeRequest {
            products: vec![pool[0].clone()],
            deadline: None,
        };
        let per_shard_sum: u64 = states
            .iter()
            .map(|s| s.probe(&sample).dominators[0].len() as u64)
            .sum();
        let before = coordinator.metrics();
        coordinator.query(&request(&pool[0])).expect("sample query");
        let after = coordinator.metrics();
        let union = after.get(Counter::GatherPoints) - before.get(Counter::GatherPoints);
        let merged = union - (after.get(Counter::MergeDropped) - before.get(Counter::MergeDropped));

        // Timed gather pass over the whole pool, per-request latency.
        let mut lat = Vec::with_capacity(pool.len());
        let start = Instant::now();
        for t in pool.iter() {
            let t0 = Instant::now();
            let resp = coordinator.query(&request(t)).expect("gathered");
            lat.push(t0.elapsed().as_nanos() as u64);
            assert!(
                matches!(resp.completion, Completion::Exact),
                "unbudgeted gather came back partial"
            );
        }
        let elapsed = start.elapsed().as_secs_f64();
        lat.sort_unstable();
        let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];

        let m = coordinator.metrics();
        scatter_gather.push(Json::obj(vec![
            ("shards", Json::Uint(shards as u64)),
            ("mutations", Json::Uint(sg_mutations as u64)),
            (
                "publish_mps",
                Json::Num(sg_mutations as f64 / publish_s.max(1e-9)),
            ),
            ("identity_checks", Json::Uint(sg_checks as u64)),
            ("queries", Json::Uint((sg_checks + 1 + pool.len()) as u64)),
            ("qps", Json::Num(pool.len() as f64 / elapsed.max(1e-9))),
            ("p99_us", Json::Num(p99 as f64 / 1e3)),
            ("scatter_probes", Json::Uint(m.get(Counter::ScatterProbes))),
            ("gather_points", Json::Uint(m.get(Counter::GatherPoints))),
            ("merge_dropped", Json::Uint(m.get(Counter::MergeDropped))),
            ("stage_acks", Json::Uint(m.get(Counter::StageAcks))),
            ("epoch_flips", Json::Uint(m.get(Counter::EpochFlips))),
            ("sample_per_shard_sum", Json::Uint(per_shard_sum)),
            ("sample_union", Json::Uint(union)),
            ("sample_merged", Json::Uint(merged)),
        ]));
        for s in states {
            s.handle().shutdown();
        }
    }

    let speedup = |phase: &str| {
        qps[&("batched", 4usize, phase)] / qps[&("per_request", 4usize, phase)].max(1e-9)
    };
    let doc = Json::obj(vec![
        (
            "workload",
            Json::obj(vec![
                ("competitors", Json::Num(n_comp as f64)),
                ("product_pool", Json::Num(n_pool as f64)),
                ("dims", Json::Num(DIMS as f64)),
                ("cold_reps", Json::Num(COLD_REPS as f64)),
                ("warm_passes", Json::Num(WARM_PASSES as f64)),
                ("pipeline", Json::Num(PIPELINE as f64)),
                ("batch_window_us", Json::Num(BATCH_WINDOW_US as f64)),
                ("sg_mutations", Json::Num(sg_mutations as f64)),
                ("sg_identity_checks", Json::Num(sg_checks as f64)),
                ("scale", Json::Num(args.scale)),
                ("seed", Json::Num(args.seed as f64)),
            ]),
        ),
        ("runs", Json::Arr(runs)),
        ("scatter_gather", Json::Arr(scatter_gather)),
        ("scatter_gather_bit_identical", Json::Bool(sg_identical)),
        ("latency", Json::Arr(latency)),
        ("durability", Json::Arr(durability)),
        (
            "recovery_replay",
            recovery_replay.expect("the interval policy ran"),
        ),
        ("batched_speedup_cold_at_4", Json::Num(speedup("cold"))),
        ("batched_speedup_warm_at_4", Json::Num(speedup("warm"))),
        ("all_modes_bit_identical", Json::Bool(all_identical)),
    ]);

    let path = std::env::var("SKYUP_BENCH_OUT")
        .unwrap_or_else(|_| "bench_results/BENCH_serve.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&path, format!("{}\n", doc.render_pretty()))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");

    assert!(
        all_identical,
        "batched or warm answers diverged from the per-request cold computation"
    );
    assert!(
        sg_identical,
        "a gathered answer diverged from the single-engine oracle"
    );
}
