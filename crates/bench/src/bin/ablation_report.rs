//! Ablation report: quantifies the design choices DESIGN.md §8 calls
//! out, in one table-per-question format.
//!
//! 1. STR bulk loading vs. insertion-built competitor trees (join time).
//! 2. R-tree fanout sweep.
//! 3. Paper LBC vs. admissible bound mode (join work + time).
//! 4. Algorithm 1 vs. the exhaustive optimum (optimality gap, paper
//!    Section VI's open question) and the extended candidate set's
//!    effect.

use skyup_bench::runner::cost_fn;
use skyup_bench::{fmt_duration, parse_args, time, Table};
use skyup_core::cost::CostFunction;
use skyup_core::join::{BoundMode, JoinUpgrader, LowerBound};
use skyup_core::{optimal_upgrade, upgrade_single, UpgradeConfig};
use skyup_data::synthetic::{paper_competitors, paper_products, Distribution};
use skyup_geom::{PointId, PointStore};
use skyup_rtree::{RTree, RTreeParams};
use skyup_skyline::skyline_sfs;

fn main() {
    let args = parse_args(1.0);
    println!("Ablation report (seed {})", args.seed);
    let dist = Distribution::AntiCorrelated;
    let p = paper_competitors(30_000, 3, dist, args.seed);
    let t = paper_products(3_000, 3, dist, args.seed + 1);
    let f = cost_fn(3);
    let cfg = UpgradeConfig::default();

    // 1. Build strategy.
    let mut table = Table::new(
        "1. Competitor index build strategy (join to k=5, CLB)",
        &["build", "build time", "join time", "leaf fill"],
    );
    type BuildFn = fn(&PointStore, RTreeParams) -> RTree;
    let strategies: [(&str, BuildFn); 2] = [
        ("STR bulk load", RTree::bulk_load),
        ("insertion", RTree::from_insertion),
    ];
    for (name, build) in strategies {
        let (build_time, rp) = time(|| build(&p, RTreeParams::default()));
        let rt = RTree::bulk_load(&t, RTreeParams::default());
        let (join_time, _) = time(|| {
            JoinUpgrader::new(&p, &rp, &t, &rt, &f, cfg, LowerBound::Conservative)
                .take(5)
                .count()
        });
        table.row(&[
            name.into(),
            fmt_duration(build_time),
            fmt_duration(join_time),
            format!("{:.2}", rp.stats().avg_leaf_fill),
        ]);
    }
    println!("{table}");

    // 2. Fanout sweep.
    let mut table = Table::new(
        "2. R-tree fanout (join to k=5, CLB)",
        &["fanout", "join time", "tree height"],
    );
    for fanout in [16usize, 32, 64, 128, 256] {
        let params = RTreeParams::with_max_entries(fanout);
        let rp = RTree::bulk_load(&p, params);
        let rt = RTree::bulk_load(&t, params);
        let (join_time, _) = time(|| {
            JoinUpgrader::new(&p, &rp, &t, &rt, &f, cfg, LowerBound::Conservative)
                .take(5)
                .count()
        });
        table.row(&[
            fanout.to_string(),
            fmt_duration(join_time),
            rp.height().to_string(),
        ]);
    }
    println!("{table}");

    // 3. Bound mode.
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let rt = RTree::bulk_load(&t, RTreeParams::default());
    let mut table = Table::new(
        "3. Paper LBC vs admissible bound (k=5, per strategy)",
        &[
            "bound",
            "mode",
            "time",
            "exact upgrades",
            "P-nodes expanded",
        ],
    );
    for bound in LowerBound::ALL {
        for (mode_name, mode) in [
            ("paper", BoundMode::Paper),
            ("admissible", BoundMode::Admissible),
        ] {
            let mut join =
                JoinUpgrader::new(&p, &rp, &t, &rt, &f, cfg, bound).with_bound_mode(mode);
            let (elapsed, _) = time(|| join.by_ref().take(5).count());
            let stats = join.stats();
            table.row(&[
                bound.abbrev().into(),
                mode_name.into(),
                fmt_duration(elapsed),
                stats.exact_upgrades.to_string(),
                stats.p_nodes_expanded.to_string(),
            ]);
        }
    }
    println!("{table}");

    // 4. Algorithm 1 optimality gap on small random instances.
    let mut table = Table::new(
        "4. Algorithm 1 vs exhaustive optimum (200 random instances, d=2..3)",
        &[
            "candidates",
            "mean gap %",
            "max gap %",
            "instances with gap",
        ],
    );
    for (name, extended) in [("paper", false), ("extended", true)] {
        let mut run_cfg = cfg;
        run_cfg.extended_candidates = extended;
        let (mean, max, count) = optimality_gap(&run_cfg, &f, args.seed);
        table.row(&[
            name.into(),
            format!("{:.3}", mean * 100.0),
            format!("{:.3}", max * 100.0),
            count.to_string(),
        ]);
    }
    println!("{table}");
}

/// Measures Algorithm 1's relative optimality gap over random small
/// instances. Returns `(mean_gap, max_gap, instances_with_gap)`.
fn optimality_gap<C: CostFunction + ?Sized>(
    cfg: &UpgradeConfig,
    _f: &C,
    seed: u64,
) -> (f64, f64, usize) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut gaps: Vec<f64> = Vec::new();
    for case in 0..200 {
        let dims = 2 + case % 2;
        let f = cost_fn(dims);
        let mut store = PointStore::new(dims);
        for _ in 0..12 {
            let p: Vec<f64> = (0..dims).map(|_| 0.8 * next()).collect();
            store.push(&p);
        }
        let t: Vec<f64> = (0..dims).map(|_| 0.85 + 0.1 * next()).collect();
        let dominators: Vec<PointId> = store
            .iter()
            .filter(|(_, c)| skyup_geom::dominance::dominates(c, &t))
            .map(|(id, _)| id)
            .collect();
        let sky = skyline_sfs(&store, &dominators);
        if sky.is_empty() {
            continue;
        }
        let (alg, _) = upgrade_single(&store, &sky, &t, &f, cfg);
        let (opt, _) = optimal_upgrade(&store, &sky, &t, &f, cfg);
        let gap = if opt > 0.0 { (alg - opt) / opt } else { 0.0 };
        gaps.push(gap.max(0.0));
    }
    let with_gap = gaps.iter().filter(|&&g| g > 1e-9).count();
    let mean = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
    let max = gaps.iter().copied().fold(0.0, f64::max);
    (mean, max, with_gap)
}
