//! Runs every figure reproduction in sequence (at each figure's default
//! scale unless overridden with `--scale` / `SKYUP_SCALE`).

use skyup_bench::figures::{large_figure, progressive_figure, small_figure};
use skyup_bench::parse_args;
use skyup_data::synthetic::Distribution;

fn main() {
    // Each figure family has its own sensible default scale; an explicit
    // --scale or SKYUP_SCALE overrides all of them.
    let explicit = std::env::args().any(|a| a == "--scale") || std::env::var("SKYUP_SCALE").is_ok();
    let pick = |default: f64| {
        let mut args = parse_args(default);
        if !explicit {
            args.scale = default;
        }
        args
    };

    println!("=== Figure 4 & 5: run `fig4` and `fig5` directly (wine data) ===");
    println!("\n=== Figure 6 ===");
    small_figure(Distribution::AntiCorrelated, &pick(0.01));
    println!("\n=== Figure 7 ===");
    small_figure(Distribution::Independent, &pick(0.01));
    println!("\n=== Figure 8 ===");
    large_figure(Distribution::AntiCorrelated, &pick(0.05));
    println!("\n=== Figure 9 ===");
    large_figure(Distribution::Independent, &pick(0.05));
    println!("\n=== Figure 10 ===");
    progressive_figure(Distribution::AntiCorrelated, &pick(0.05));
    println!("\n=== Figure 11 ===");
    progressive_figure(Distribution::Independent, &pick(0.05));
}
