//! CI perf-regression gate: compares a freshly generated bench report
//! against the committed baseline and fails on regression.
//!
//! ```text
//! bench_gate <serve|probing> <fresh.json> <baseline.json>
//! ```
//!
//! Exit codes: `0` pass, `1` one or more checks failed (each reason on
//! stderr), `2` usage / unreadable / unparsable input.
//!
//! Two kinds of check, deliberately separated:
//!
//! * **Machine-independent invariants** are exact. Bit-identity flags,
//!   cache hit/miss counts, batch request counts, and evaluated-product
//!   counts are pure functions of the committed workload — any drift is
//!   a behavior change, not noise, so the tolerance is zero. Quantities
//!   that are genuinely timing-dependent (how many batches a window
//!   coalesced, what a racy shared threshold pruned at >1 threads) get
//!   structural checks instead of exact ones.
//! * **Wall-clock** is one-sided with a 25% tolerance: fresh may not be
//!   more than 1.25x slower than baseline (per row). Faster never
//!   fails; the driver script retries the whole run to ride out
//!   scheduler noise on shared hardware.
//!
//! The serve gate additionally audits the telemetry snapshots the bench
//! emits ([`gate_serve_latency`]): trace count == requests served,
//! per-class histogram bucket counts conserve, per-class trace counts
//! match the baseline exactly, and the slow log stays empty on the
//! all-exact workload. Bucket *placement* — the latencies themselves —
//! is never compared.

use skyup_obs::json::{parse, Json};
use std::process::ExitCode;

/// Fresh wall-clock may lag baseline by at most this factor.
const WALL_TOLERANCE: f64 = 1.25;
/// The acceptance floor for the batched serving path (cold, 4 client
/// threads) — mirrors the committed claim, with the measured ~2x
/// leaving real margin.
const MIN_BATCHED_SPEEDUP_COLD: f64 = 1.5;

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn new() -> Self {
        Gate {
            failures: Vec::new(),
        }
    }

    fn fail(&mut self, msg: String) {
        self.failures.push(msg);
    }

    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        if !ok {
            self.fail(msg());
        }
    }

    /// Exact match of a numeric field between fresh and baseline.
    fn exact(&mut self, what: &str, key: &str, fresh: &Json, baseline: &Json) {
        let f = num(fresh, key);
        let b = num(baseline, key);
        match (f, b) {
            (Some(f), Some(b)) => self.check(f == b, || {
                format!("{what}: {key} changed: fresh {f} vs baseline {b}")
            }),
            _ => self.fail(format!(
                "{what}: {key} missing (fresh {f:?}, baseline {b:?})"
            )),
        }
    }

    /// One-sided wall-clock check: fresh may not exceed baseline by
    /// more than [`WALL_TOLERANCE`]. `key` holds a duration (smaller is
    /// better).
    fn wall(&mut self, what: &str, key: &str, fresh: &Json, baseline: &Json) {
        match (num(fresh, key), num(baseline, key)) {
            (Some(f), Some(b)) => self.check(f <= b * WALL_TOLERANCE, || {
                format!(
                    "{what}: {key} regressed: fresh {f:.1} vs baseline {b:.1} \
                     (tolerance {WALL_TOLERANCE}x)"
                )
            }),
            (f, b) => self.fail(format!(
                "{what}: {key} missing (fresh {f:?}, baseline {b:?})"
            )),
        }
    }

    /// One-sided throughput check: fresh may not fall below baseline by
    /// more than [`WALL_TOLERANCE`]. `key` holds a rate (bigger is
    /// better).
    fn rate(&mut self, what: &str, key: &str, fresh: &Json, baseline: &Json) {
        match (num(fresh, key), num(baseline, key)) {
            (Some(f), Some(b)) => self.check(f * WALL_TOLERANCE >= b, || {
                format!(
                    "{what}: {key} regressed: fresh {f:.0} vs baseline {b:.0} \
                     (tolerance {WALL_TOLERANCE}x)"
                )
            }),
            (f, b) => self.fail(format!(
                "{what}: {key} missing (fresh {f:?}, baseline {b:?})"
            )),
        }
    }

    /// Every field of the baseline's `workload` object must match the
    /// fresh one exactly: a gate run at a different scale or seed is
    /// comparing apples to oranges and must say so rather than pass
    /// vacuously.
    fn workload(&mut self, fresh: &Json, baseline: &Json) {
        let (Some(Json::Obj(bf)), Some(fw)) = (baseline.get("workload"), fresh.get("workload"))
        else {
            self.fail("workload object missing".into());
            return;
        };
        for (key, want) in bf {
            match fw.get(key) {
                Some(have) if render(have) == render(want) => {}
                Some(have) => self.fail(format!(
                    "workload.{key} differs: fresh {} vs baseline {} \
                     (rerun the gate at the committed scale/seed)",
                    render(have),
                    render(want)
                )),
                None => self.fail(format!("workload.{key} missing from fresh report")),
            }
        }
    }
}

fn num(doc: &Json, key: &str) -> Option<f64> {
    doc.get(key).and_then(|v| v.as_f64())
}

fn is_true(doc: &Json, key: &str) -> bool {
    matches!(doc.get(key), Some(Json::Bool(true)))
}

fn render(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Num(n) => format!("{n}"),
        Json::Uint(n) => format!("{n}"),
        Json::Bool(b) => format!("{b}"),
        other => format!("{other:?}"),
    }
}

fn rows<'a>(doc: &'a Json, key: &str) -> Option<&'a [Json]> {
    match doc.get(key) {
        Some(Json::Arr(items)) => Some(items),
        _ => None,
    }
}

/// Class keys the serve telemetry snapshot must carry, mirroring
/// `skyup_obs::TraceClass::ALL`.
const TRACE_CLASSES: [&str; 6] = [
    "query_cached",
    "query_cold",
    "query_batched",
    "query_shed",
    "mutation",
    "stats",
];

/// Structural checks on the telemetry snapshots (`latency` rows) the
/// serve bench emits: trace accounting must balance exactly.
///
/// Bucket *placement* is machine-dependent (it is the latency), so the
/// gate never compares bucket bounds — only the conservation laws and
/// the per-class trace counts, which are pure functions of the
/// committed workload (one cold pass + the warm passes on the surviving
/// engine, nothing shed, no mutations, slow threshold 0). Only the
/// cumulative histograms are checked; the rolling view depends on how
/// wall-clock windows sliced the run.
fn gate_serve_latency(gate: &mut Gate, fresh: &Json, baseline: &Json) {
    let (Some(fresh_rows), Some(base_rows)) = (rows(fresh, "latency"), rows(baseline, "latency"))
    else {
        gate.fail("latency array missing (telemetry snapshots not emitted)".into());
        return;
    };
    let key = |row: &Json| {
        (
            row.get("mode")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string(),
            num(row, "threads").unwrap_or(-1.0) as i64,
        )
    };
    for brow in base_rows {
        let (mode, threads) = key(brow);
        let what = format!("serve latency {mode}/{threads}t");
        let Some(frow) = fresh_rows.iter().find(|r| key(r) == key(brow)) else {
            gate.fail(format!("{what}: missing from fresh report"));
            continue;
        };
        gate.exact(&what, "requests_served", frow, brow);
        let (Some(fm), Some(bm)) = (frow.get("metrics"), brow.get("metrics")) else {
            gate.fail(format!("{what}: metrics object missing"));
            continue;
        };
        // Every request the surviving handle served must have produced
        // exactly one trace — the tentpole's accounting invariant.
        let served = num(frow, "requests_served").unwrap_or(-1.0);
        let recorded = num(fm, "traces_recorded").unwrap_or(-2.0);
        gate.check(served == recorded, || {
            format!("{what}: traces_recorded {recorded} != requests_served {served}")
        });
        // slow_ms is 0 and the workload never sheds or runs partial, so
        // the slow log is deterministically empty.
        let slow = num(fm, "slow_recorded").unwrap_or(-1.0);
        gate.check(slow == 0.0, || {
            format!("{what}: slow log not empty ({slow} entries) on an all-exact workload")
        });
        let (Some(fc), Some(bc)) = (fm.get("classes"), bm.get("classes")) else {
            gate.fail(format!("{what}: classes object missing"));
            continue;
        };
        let mut class_total = 0.0;
        for class in TRACE_CLASSES {
            let cwhat = format!("{what} class {class}");
            let (Some(fcum), Some(bcum)) = (
                fc.get(class).and_then(|c| c.get("cumulative")),
                bc.get(class).and_then(|c| c.get("cumulative")),
            ) else {
                gate.fail(format!("{cwhat}: cumulative histogram missing"));
                continue;
            };
            // Per-class counts are machine-independent; check exactly.
            gate.exact(&cwhat, "count", fcum, bcum);
            let count = num(fcum, "count").unwrap_or(0.0);
            class_total += count;
            // Conservation: the bucket array accounts for every trace.
            let bucket_sum: f64 = match fcum.get("buckets") {
                Some(Json::Arr(bs)) => bs.iter().filter_map(|b| num(b, "count")).sum(),
                _ => {
                    gate.fail(format!("{cwhat}: buckets array missing"));
                    continue;
                }
            };
            gate.check(bucket_sum == count, || {
                format!("{cwhat}: bucket counts sum to {bucket_sum}, histogram count {count}")
            });
        }
        gate.check(class_total == recorded, || {
            format!(
                "{what}: per-class counts sum to {class_total}, \
                 traces_recorded {recorded} (traces lost or double-counted)"
            )
        });
    }
    gate.check(fresh_rows.len() == base_rows.len(), || {
        format!(
            "serve latency row count changed: fresh {} vs baseline {}",
            fresh_rows.len(),
            base_rows.len()
        )
    });
}

/// Checks on the durability section of the serve report.
///
/// The counters are pure functions of the committed workload (every
/// mutation appends exactly one record; the fsync count follows from
/// the policy), so they are exact. The recovered-state checksum and the
/// clean-shutdown torn-tail count are self-invariants of the fresh run.
/// Mutation throughput and replay rate are wall-clock: one-sided with
/// the usual tolerance — except under `always`, where the time is
/// dominated by the device's fsync latency and a rate check would gate
/// the disk, not the code; there the structure is checked instead.
fn gate_serve_durability(gate: &mut Gate, fresh: &Json, baseline: &Json) {
    let (Some(fresh_rows), Some(base_rows)) =
        (rows(fresh, "durability"), rows(baseline, "durability"))
    else {
        gate.fail("durability array missing".into());
        return;
    };
    let policy = |row: &Json| {
        row.get("policy")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    for brow in base_rows {
        let name = policy(brow);
        let what = format!("serve durability {name}");
        let Some(frow) = fresh_rows.iter().find(|r| policy(r) == name) else {
            gate.fail(format!("{what}: missing from fresh report"));
            continue;
        };
        for field in ["mutations", "wal_appends", "wal_bytes", "wal_fsyncs"] {
            gate.exact(&what, field, frow, brow);
        }
        // The tentpole's accounting law: one durable record per acked
        // mutation, no more, no fewer.
        let muts = num(frow, "mutations").unwrap_or(-1.0);
        let appends = num(frow, "wal_appends").unwrap_or(-2.0);
        gate.check(muts == appends, || {
            format!("{what}: wal_appends {appends} != acked mutations {muts}")
        });
        if name != "always" {
            gate.rate(&what, "mps", frow, brow);
        }
    }
    gate.check(fresh_rows.len() == base_rows.len(), || {
        format!(
            "serve durability row count changed: fresh {} vs baseline {}",
            fresh_rows.len(),
            base_rows.len()
        )
    });

    let (Some(fr), Some(br)) = (
        fresh.get("recovery_replay"),
        baseline.get("recovery_replay"),
    ) else {
        gate.fail("recovery_replay object missing".into());
        return;
    };
    gate.exact("serve recovery", "replayed", fr, br);
    gate.rate("serve recovery", "replay_rps", fr, br);
    gate.check(is_true(fr, "checksum_equal"), || {
        "serve recovery: recovered state does not hash identically to the \
         pre-recovery engine"
            .into()
    });
    let torn = num(fr, "torn_truncated").unwrap_or(-1.0);
    gate.check(torn == 0.0, || {
        format!("serve recovery: {torn} torn tails after a clean shutdown")
    });
}

/// Gate for `serve_throughput` reports (`BENCH_serve.json`). Rows are
/// keyed by `(mode, threads, phase)`.
fn gate_serve(gate: &mut Gate, fresh: &Json, baseline: &Json) {
    gate.workload(fresh, baseline);
    gate.check(is_true(fresh, "all_modes_bit_identical"), || {
        "all_modes_bit_identical is not true: batched or warm answers \
         diverged from the per-request cold computation"
            .into()
    });
    match num(fresh, "batched_speedup_cold_at_4") {
        Some(s) => gate.check(s >= MIN_BATCHED_SPEEDUP_COLD, || {
            format!(
                "batched_speedup_cold_at_4 = {s:.2} below the \
                 {MIN_BATCHED_SPEEDUP_COLD} acceptance floor"
            )
        }),
        None => gate.fail("batched_speedup_cold_at_4 missing".into()),
    }

    let (Some(fresh_rows), Some(base_rows)) = (rows(fresh, "runs"), rows(baseline, "runs")) else {
        gate.fail("runs array missing".into());
        return;
    };
    let key = |row: &Json| {
        (
            row.get("mode")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string(),
            num(row, "threads").unwrap_or(-1.0) as i64,
            row.get("phase")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string(),
        )
    };
    for brow in base_rows {
        let (mode, threads, phase) = key(brow);
        let what = format!("serve row {mode}/{threads}t/{phase}");
        let Some(frow) = fresh_rows.iter().find(|r| key(r) == key(brow)) else {
            gate.fail(format!("{what}: missing from fresh report"));
            continue;
        };
        // Machine-independent: the cache and batching behavior of the
        // committed workload is deterministic per pass.
        for field in ["requests", "cache_hit", "cache_miss", "batched_requests"] {
            gate.exact(&what, field, frow, brow);
        }
        // Batch count is timing-dependent (how the admission window
        // slices the stream), so only its structure is checked.
        let batches = num(frow, "batches_executed").unwrap_or(-1.0);
        if mode == "per_request" {
            gate.check(batches == 0.0, || {
                format!("{what}: per-request mode executed {batches} batches")
            });
        } else {
            gate.check(batches >= 1.0, || {
                format!("{what}: batched mode never formed a batch")
            });
            if phase == "cold" {
                let memo = num(frow, "dominator_memo_hits").unwrap_or(0.0);
                gate.check(memo >= 1.0, || {
                    format!("{what}: the cross-request dominator memo never hit")
                });
            }
        }
        gate.rate(&what, "qps", frow, brow);
    }
    gate.check(fresh_rows.len() == base_rows.len(), || {
        format!(
            "serve run count changed: fresh {} vs baseline {}",
            fresh_rows.len(),
            base_rows.len()
        )
    });
    gate_serve_latency(gate, fresh, baseline);
    gate_serve_durability(gate, fresh, baseline);
    gate_serve_scatter(gate, fresh, baseline);
}

/// Scatter/gather rows (`scatter_gather`, keyed by shard count): the
/// gathered answer must stay bit-identical to the single-engine
/// oracle, the fan-out and publish counters are exact functions of the
/// committed workload, the sampled merge-filter chain must be
/// conserved (per-shard dominator sum >= gathered union >= merged
/// skyline), and gather qps / publish throughput are wall-clock with
/// the usual one-sided tolerance.
fn gate_serve_scatter(gate: &mut Gate, fresh: &Json, baseline: &Json) {
    gate.check(is_true(fresh, "scatter_gather_bit_identical"), || {
        "scatter_gather_bit_identical is not true: a gathered answer \
         diverged from the single-engine oracle"
            .into()
    });
    let (Some(frows), Some(brows)) = (
        rows(fresh, "scatter_gather"),
        rows(baseline, "scatter_gather"),
    ) else {
        gate.fail("scatter_gather array missing".into());
        return;
    };
    for brow in brows {
        let shards = num(brow, "shards").unwrap_or(-1.0);
        let what = format!("scatter_gather {shards}-shard");
        let Some(frow) = frows.iter().find(|r| num(r, "shards") == Some(shards)) else {
            gate.fail(format!("{what}: missing from fresh report"));
            continue;
        };
        // Machine-independent: deterministic functions of the committed
        // workload and seed.
        for field in [
            "mutations",
            "identity_checks",
            "queries",
            "scatter_probes",
            "gather_points",
            "merge_dropped",
            "stage_acks",
            "epoch_flips",
            "sample_per_shard_sum",
            "sample_union",
            "sample_merged",
        ] {
            gate.exact(&what, field, frow, brow);
        }
        let g = |key: &str| num(frow, key).unwrap_or(-1.0);
        gate.check(g("scatter_probes") == g("queries") * shards, || {
            format!(
                "{what}: scatter fan-out broke: {} probes for {} queries x {shards} shards",
                g("scatter_probes"),
                g("queries")
            )
        });
        gate.check(g("stage_acks") == g("epoch_flips") * shards, || {
            format!(
                "{what}: two-phase accounting broke: {} stage acks for {} flips x {shards} \
                 shards",
                g("stage_acks"),
                g("epoch_flips")
            )
        });
        gate.check(g("epoch_flips") == g("mutations"), || {
            format!(
                "{what}: {} publishes for {} mutations",
                g("epoch_flips"),
                g("mutations")
            )
        });
        gate.check(
            g("sample_per_shard_sum") >= g("sample_union")
                && g("sample_union") >= g("sample_merged")
                && g("sample_merged") >= 1.0,
            || {
                format!(
                    "{what}: merge-filter chain broke: per-shard sum {} >= union {} >= \
                     merged {} >= 1 must hold",
                    g("sample_per_shard_sum"),
                    g("sample_union"),
                    g("sample_merged")
                )
            },
        );
        gate.rate(&what, "qps", frow, brow);
        gate.rate(&what, "publish_mps", frow, brow);
    }
    gate.check(frows.len() == brows.len(), || {
        format!(
            "scatter_gather row count changed: fresh {} vs baseline {}",
            frows.len(),
            brows.len()
        )
    });
}

/// Gate for `probe_sched` reports (`BENCH_probing.json`). Rows are
/// keyed by `(strategy, threads)`.
fn gate_probing(gate: &mut Gate, fresh: &Json, baseline: &Json) {
    for (f, b) in [
        (fresh.get("schema"), baseline.get("schema")),
        (
            fresh.get("samples_per_config"),
            baseline.get("samples_per_config"),
        ),
    ] {
        match (f, b) {
            (Some(f), Some(b)) if render(f) == render(b) => {}
            (f, b) => gate.fail(format!(
                "probing header mismatch: fresh {f:?} vs baseline {b:?}"
            )),
        }
    }
    gate.workload(fresh, baseline);
    gate.wall("probing", "sequential_wall_us", fresh, baseline);

    let (Some(fresh_rows), Some(base_rows)) = (rows(fresh, "runs"), rows(baseline, "runs")) else {
        gate.fail("runs array missing".into());
        return;
    };
    let t_size = baseline
        .get("workload")
        .and_then(|w| num(w, "t_size"))
        .unwrap_or(0.0);
    let key = |row: &Json| {
        (
            row.get("strategy")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string(),
            num(row, "threads").unwrap_or(-1.0) as i64,
        )
    };
    for brow in base_rows {
        let (strategy, threads) = key(brow);
        let what = format!("probing row {strategy}/{threads}t");
        let Some(frow) = fresh_rows.iter().find(|r| key(r) == key(brow)) else {
            gate.fail(format!("{what}: missing from fresh report"));
            continue;
        };
        gate.check(is_true(frow, "bit_identical_to_sequential"), || {
            format!("{what}: scheduled results diverged from the sequential oracle")
        });
        // Static-chunk and work-stealing evaluate every product; their
        // counts are deterministic. Bound-sorted pruning races on the
        // shared threshold above one thread, so there only the
        // conservation law evaluated + pruned == t_size is exact.
        if strategy != "bound_sorted" || threads == 1 {
            gate.exact(&what, "evaluated", frow, brow);
            gate.exact(&what, "pruned", frow, brow);
        } else {
            let e = num(frow, "evaluated").unwrap_or(-1.0);
            let p = num(frow, "pruned").unwrap_or(-1.0);
            gate.check(e + p == t_size, || {
                format!(
                    "{what}: evaluated {e} + pruned {p} != t_size {t_size} \
                     (products lost or double-counted)"
                )
            });
        }
        if let (Some(fc), Some(bc)) = (frow.get("counters"), brow.get("counters")) {
            gate.exact(&what, "results_emitted", fc, bc);
            let panics = num(fc, "worker_panics").unwrap_or(-1.0);
            gate.check(panics == 0.0, || format!("{what}: {panics} worker panics"));
        } else {
            gate.fail(format!("{what}: counters object missing"));
        }
        gate.wall(&what, "wall_us", frow, brow);
    }
    gate.check(fresh_rows.len() == base_rows.len(), || {
        format!(
            "probing run count changed: fresh {} vs baseline {}",
            fresh_rows.len(),
            base_rows.len()
        )
    });
}

/// Gate for `kernel_bench` reports (`BENCH_kernel.json`). Rows are
/// keyed by `(dataset, variant)`.
///
/// Everything but the wall-clock is machine-independent here: the bench
/// is single-threaded and the datasets are seeded, so dominated-target
/// counts, dominator totals, and the blocks scanned/skipped by the
/// zone maps are pure functions of the committed workload and are
/// checked exactly. The conservation law `blocks_scanned +
/// blocks_skipped == total_blocks` and the bit-identity of every
/// variant against the scalar oracle are self-invariants of the fresh
/// run; `skewed_blocks_skipped > 0` pins the pruning path alive.
fn gate_kernel(gate: &mut Gate, fresh: &Json, baseline: &Json) {
    for (f, b) in [
        (fresh.get("schema"), baseline.get("schema")),
        (
            fresh.get("samples_per_config"),
            baseline.get("samples_per_config"),
        ),
    ] {
        match (f, b) {
            (Some(f), Some(b)) if render(f) == render(b) => {}
            (f, b) => gate.fail(format!(
                "kernel header mismatch: fresh {f:?} vs baseline {b:?}"
            )),
        }
    }
    gate.workload(fresh, baseline);

    let Some(acc) = fresh.get("acceptance") else {
        gate.fail("kernel acceptance section missing from fresh report".into());
        return;
    };
    gate.check(is_true(acc, "all_identical_to_scalar"), || {
        "all_identical_to_scalar is not true: a kernel variant diverged \
         from the scalar dominance oracle"
            .into()
    });
    gate.check(is_true(acc, "conservation_ok"), || {
        "conservation_ok is not true: blocks_scanned + blocks_skipped \
         stopped equaling the total block count"
            .into()
    });
    let skipped = num(acc, "skewed_blocks_skipped").unwrap_or(-1.0);
    gate.check(skipped > 0.0, || {
        format!("skewed_blocks_skipped = {skipped}: the zone-map pruning path is dead")
    });
    gate.check(is_true(acc, "zoned_collect_beats_scalar_skewed"), || {
        "zoned collect scan no longer beats the scalar loop on the \
         skewed dataset"
            .into()
    });

    let (Some(fresh_ds), Some(base_ds)) = (rows(fresh, "datasets"), rows(baseline, "datasets"))
    else {
        gate.fail("kernel datasets section missing (report not from kernel_bench?)".into());
        return;
    };
    let ds_name = |row: &Json| {
        row.get("dataset")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    for bds in base_ds {
        let name = ds_name(bds);
        let Some(fds) = fresh_ds.iter().find(|d| ds_name(d) == name) else {
            gate.fail(format!("kernel dataset {name}: missing from fresh report"));
            continue;
        };
        gate.exact(&format!("kernel dataset {name}"), "total_blocks", fds, bds);
        let (Some(frows), Some(brows)) = (rows(fds, "runs"), rows(bds, "runs")) else {
            gate.fail(format!("kernel dataset {name}: runs array missing"));
            continue;
        };
        let variant = |row: &Json| {
            row.get("variant")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string()
        };
        for brow in brows {
            let what = format!("kernel {name}/{}", variant(brow));
            let Some(frow) = frows.iter().find(|r| variant(r) == variant(brow)) else {
                gate.fail(format!("{what}: missing from fresh report"));
                continue;
            };
            for field in [
                "dominated_targets",
                "dominators_total",
                "blocks_scanned",
                "blocks_skipped",
            ] {
                gate.exact(&what, field, frow, brow);
            }
            gate.check(is_true(frow, "identical_to_scalar"), || {
                format!("{what}: dominator lists diverged from the scalar oracle")
            });
            gate.check(is_true(frow, "conservation_ok"), || {
                format!("{what}: block accounting lost or double-counted blocks")
            });
            gate.wall(&what, "membership_wall_us", frow, brow);
            gate.wall(&what, "collect_wall_us", frow, brow);
        }
        gate.check(frows.len() == brows.len(), || {
            format!(
                "kernel dataset {name} run count changed: fresh {} vs baseline {}",
                frows.len(),
                brows.len()
            )
        });
    }
    gate.check(fresh_ds.len() == base_ds.len(), || {
        format!(
            "kernel dataset count changed: fresh {} vs baseline {}",
            fresh_ds.len(),
            base_ds.len()
        )
    });
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("parse {path}: {e:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [kind, fresh_path, baseline_path] = &args[..] else {
        eprintln!("usage: bench_gate <serve|probing|kernel> <fresh.json> <baseline.json>");
        return ExitCode::from(2);
    };
    let (fresh, baseline) = match (load(fresh_path), load(baseline_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (f, b) => {
            for r in [f, b] {
                if let Err(e) = r {
                    eprintln!("bench_gate: {e}");
                }
            }
            return ExitCode::from(2);
        }
    };

    let mut gate = Gate::new();
    match kind.as_str() {
        "serve" => gate_serve(&mut gate, &fresh, &baseline),
        "probing" => gate_probing(&mut gate, &fresh, &baseline),
        "kernel" => gate_kernel(&mut gate, &fresh, &baseline),
        other => {
            eprintln!("bench_gate: unknown kind {other:?} (want serve, probing, or kernel)");
            return ExitCode::from(2);
        }
    }

    if gate.failures.is_empty() {
        println!("bench_gate {kind}: OK ({fresh_path} vs {baseline_path})");
        ExitCode::SUCCESS
    } else {
        for f in &gate.failures {
            eprintln!("bench_gate {kind}: FAIL: {f}");
        }
        eprintln!(
            "bench_gate {kind}: {} check(s) failed ({fresh_path} vs {baseline_path})",
            gate.failures.len()
        );
        ExitCode::FAILURE
    }
}
