//! Records a machine-independent counter baseline for the Figure 4
//! workload (wine data set, k = 1) as JSON.
//!
//! Timings drift with hardware; the counters in the `skyup-obs` schema
//! (dominance tests, R-tree accesses, heap traffic, …) do not. This
//! binary snapshots them per attribute combination and algorithm so
//! regressions in pruning effectiveness show up as diffs of
//! `bench_results/counters_baseline.json` rather than as noisy timing
//! shifts. Phase timings are deliberately omitted: they are the
//! machine-dependent part of the schema (`--stats` and `fig4` report
//! them live instead).
//!
//! The product set is capped at 250 tuples (vs. Figure 4's 1,000) so
//! the snapshot regenerates in seconds; the counters still separate the
//! algorithms clearly.

use skyup_bench::parse_args;
use skyup_bench::runner::{build_trees, run_basic_metrics, run_improved_metrics, run_join_metrics};
use skyup_core::join::LowerBound;
use skyup_data::wine::WineAttr;
use skyup_data::{split_products, wine_dataset};
use skyup_obs::json::Json;
use skyup_obs::{Counter, QueryMetrics};

/// Products held out as upgrade candidates (small-scale Figure 4).
const T_SIZE: usize = 250;

fn counters_json(m: &QueryMetrics) -> Json {
    Json::obj(
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), Json::Num(m.get(c) as f64)))
            .collect(),
    )
}

fn main() {
    let args = parse_args(1.0);
    let mut combos = Vec::new();

    for attrs in WineAttr::table_three() {
        let label: String = attrs
            .iter()
            .map(|a| a.abbrev())
            .collect::<Vec<_>>()
            .join(",");
        let full = wine_dataset(&attrs, args.seed);
        let (p, t) = split_products(&full, T_SIZE, args.seed);
        let (rp, rt) = build_trees(&p, &t);

        let (_, basic) = run_basic_metrics(&p, &rp, &t, 1);
        let (_, improved) = run_improved_metrics(&p, &rp, &t, 1);
        let (_, join) = run_join_metrics(&p, &rp, &t, &rt, 1, LowerBound::Conservative);

        eprintln!(
            "{label}: basic {} / improved {} entry accesses",
            basic.get(Counter::RtreeEntryAccesses),
            improved.get(Counter::RtreeEntryAccesses),
        );
        combos.push(Json::obj(vec![
            ("attrs", Json::Str(label)),
            ("basic", counters_json(&basic)),
            ("improved", counters_json(&improved)),
            ("join_clb", counters_json(&join)),
        ]));
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("skyup-obs-baseline/1".into())),
        ("workload", Json::Str("fig4-wine".into())),
        ("seed", Json::Num(args.seed as f64)),
        ("t_size", Json::Num(T_SIZE as f64)),
        ("k", Json::Num(1.0)),
        ("combos", Json::Arr(combos)),
    ]);

    let path = "bench_results/counters_baseline.json";
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write(path, format!("{}\n", doc.render_pretty()))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
