//! Probe-scheduler shoot-out: static chunking vs. work-stealing vs.
//! bound-sorted work-stealing at 1/2/4/8 threads, as JSON.
//!
//! The workload is a fig8-scale synthetic: anti-correlated `P` on the
//! unit cube (many skyline points, so `getDominatingSky` has real work
//! to do) and uncompetitive `T` shifted to `[0.3, 1.3]` under a linear
//! per-attribute cost — the regime where the admissible list bound is
//! positive and the shared-threshold screen actually fires. Every
//! scheduled run is checked bit-for-bit against the sequential
//! `improved_probing_topk` oracle before its timing is trusted.
//!
//! Wall-clock is the machine-dependent half of the output; the counter
//! snapshot (`ProductsEvaluated`, `ThresholdPrunes`, `StealEvents`, …)
//! is the machine-independent half, so scheduler regressions show up as
//! diffs of `bench_results/BENCH_probing.json` even when timings drift.
//! Set `SKYUP_BENCH_OUT` to redirect the report (CI smoke runs do).

use std::time::Duration;

use skyup_bench::runner::build_trees;
use skyup_bench::{fmt_duration, parse_args, time};
use skyup_core::cost::{AttributeCost, LinearCost, SumCost};
use skyup_core::{
    improved_probing_topk, improved_probing_topk_scheduled_rec, ProbeStrategy, UpgradeConfig,
    UpgradeResult,
};
use skyup_data::synthetic::{generate, Distribution, SyntheticConfig};
use skyup_obs::json::Json;
use skyup_obs::{Counter, QueryMetrics};

/// Timing samples per configuration; the median is reported.
const SAMPLES: usize = 5;
/// Top-k size — small enough that the threshold tightens early.
const K: usize = 10;
const DIMS: usize = 3;

fn linear_cost(dims: usize) -> SumCost {
    SumCost::new(
        (0..dims)
            .map(|_| Box::new(LinearCost::new(2.0, 1.0)) as Box<dyn AttributeCost>)
            .collect(),
    )
}

fn counters_json(m: &QueryMetrics) -> Json {
    Json::obj(
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), Json::Num(m.get(c) as f64)))
            .collect(),
    )
}

/// Bit-level equality: same products in the same order with identical
/// cost and coordinate bits.
fn bit_identical(a: &[UpgradeResult], b: &[UpgradeResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.product == y.product
                && x.cost.to_bits() == y.cost.to_bits()
                && x.original.len() == y.original.len()
                && x.upgraded.len() == y.upgraded.len()
                && (x.original.iter().zip(&y.original)).all(|(u, v)| u.to_bits() == v.to_bits())
                && (x.upgraded.iter().zip(&y.upgraded)).all(|(u, v)| u.to_bits() == v.to_bits())
        })
}

fn median_wall(mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..SAMPLES).map(|_| time(&mut f).0).collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let args = parse_args(0.02);
    let p_size = args.scaled(100_000);
    let t_size = args.scaled(20_000);

    let p = generate(
        p_size,
        &SyntheticConfig::unit(DIMS, Distribution::AntiCorrelated, args.seed),
    );
    let t = generate(
        t_size,
        &SyntheticConfig {
            dims: DIMS,
            distribution: Distribution::Independent,
            lo: 0.3,
            hi: 1.3,
            seed: args.seed ^ 0x5eed,
        },
    );
    let (rp, _rt) = build_trees(&p, &t);
    let cost = linear_cost(DIMS);
    let cfg = UpgradeConfig::default();

    println!(
        "probe scheduler bench: |P|={p_size} |T|={t_size} d={DIMS} k={K} seed={}",
        args.seed
    );

    // Sequential oracle: result reference and the wall-clock baseline.
    let reference = improved_probing_topk(&p, &rp, &t, K, &cost, &cfg);
    let seq_wall = median_wall(|| {
        std::hint::black_box(improved_probing_topk(&p, &rp, &t, K, &cost, &cfg));
    });
    println!("  sequential improved probing: {}", fmt_duration(seq_wall));

    let strategies = [
        ProbeStrategy::StaticChunk,
        ProbeStrategy::WorkStealing,
        ProbeStrategy::BoundSorted,
    ];
    let thread_counts = [1usize, 2, 4, 8];

    let mut runs = Vec::new();
    let mut all_identical = true;
    // (wall, evaluated) at 4 threads, indexed by strategy, for the
    // acceptance comparison.
    let mut at4: Vec<(&'static str, Duration, u64)> = Vec::new();

    for strategy in strategies {
        for threads in thread_counts {
            let mut metrics = QueryMetrics::default();
            let (results, stats) = improved_probing_topk_scheduled_rec(
                &p,
                &rp,
                &t,
                K,
                &cost,
                &cfg,
                threads,
                strategy,
                &mut metrics,
            );
            let identical = bit_identical(&results, &reference);
            all_identical &= identical;

            let wall = median_wall(|| {
                std::hint::black_box(improved_probing_topk_scheduled_rec(
                    &p,
                    &rp,
                    &t,
                    K,
                    &cost,
                    &cfg,
                    threads,
                    strategy,
                    &mut skyup_obs::NullRecorder,
                ));
            });
            println!(
                "  {:<13} threads={threads}: {}  evaluated={} pruned={}{}",
                strategy.name(),
                fmt_duration(wall),
                stats.evaluated,
                stats.pruned,
                if identical { "" } else { "  MISMATCH" },
            );
            if threads == 4 {
                at4.push((strategy.name(), wall, stats.evaluated));
            }
            runs.push(Json::obj(vec![
                ("strategy", Json::Str(strategy.name().into())),
                ("threads", Json::Num(threads as f64)),
                ("wall_us", Json::Num(wall.as_micros() as f64)),
                (
                    "speedup_vs_sequential",
                    Json::Num(seq_wall.as_secs_f64() / wall.as_secs_f64()),
                ),
                ("bit_identical_to_sequential", Json::Bool(identical)),
                ("evaluated", Json::Num(stats.evaluated as f64)),
                ("pruned", Json::Num(stats.pruned as f64)),
                ("counters", counters_json(&metrics)),
            ]));
        }
    }

    // Acceptance: at 4 threads the bound-sorted prober must beat the
    // static-chunk prober on both wall-clock and products evaluated.
    let chunk4 = at4.iter().find(|(n, ..)| *n == "static_chunk").unwrap();
    let sorted4 = at4.iter().find(|(n, ..)| *n == "bound_sorted").unwrap();
    let wall_win = sorted4.1 < chunk4.1;
    let eval_win = sorted4.2 < chunk4.2;
    println!(
        "  acceptance @4 threads: wall {} vs {} ({}), evaluated {} vs {} ({})",
        fmt_duration(sorted4.1),
        fmt_duration(chunk4.1),
        if wall_win { "win" } else { "LOSS" },
        sorted4.2,
        chunk4.2,
        if eval_win { "win" } else { "LOSS" },
    );

    let doc = Json::obj(vec![
        ("schema", Json::Str("skyup-bench-probing/1".into())),
        (
            "workload",
            Json::obj(vec![
                ("p_size", Json::Num(p_size as f64)),
                ("t_size", Json::Num(t_size as f64)),
                ("dims", Json::Num(DIMS as f64)),
                ("k", Json::Num(K as f64)),
                ("seed", Json::Num(args.seed as f64)),
                ("p_distribution", Json::Str("anti_correlated_unit".into())),
                ("t_domain", Json::Str("independent [0.3, 1.3]".into())),
                ("cost", Json::Str("sum of linear(2.0, 1.0) per dim".into())),
            ]),
        ),
        ("samples_per_config", Json::Num(SAMPLES as f64)),
        ("sequential_wall_us", Json::Num(seq_wall.as_micros() as f64)),
        ("runs", Json::Arr(runs)),
        (
            "acceptance",
            Json::obj(vec![
                ("threads", Json::Num(4.0)),
                (
                    "static_chunk_wall_us",
                    Json::Num(chunk4.1.as_micros() as f64),
                ),
                (
                    "bound_sorted_wall_us",
                    Json::Num(sorted4.1.as_micros() as f64),
                ),
                ("wall_clock_win", Json::Bool(wall_win)),
                ("static_chunk_evaluated", Json::Num(chunk4.2 as f64)),
                ("bound_sorted_evaluated", Json::Num(sorted4.2 as f64)),
                ("evaluated_win", Json::Bool(eval_win)),
                ("all_runs_bit_identical", Json::Bool(all_identical)),
            ]),
        ),
    ]);

    let path = std::env::var("SKYUP_BENCH_OUT")
        .unwrap_or_else(|_| "bench_results/BENCH_probing.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&path, format!("{}\n", doc.render_pretty()))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");

    assert!(
        all_identical,
        "scheduled probing diverged from the sequential oracle"
    );
}
