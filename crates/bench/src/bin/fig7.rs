//! Figure 7: small synthetic data sets with independent dimensions —
//! improved probing vs. join (NLB). Panels: vary |P|, vary |T|, vary d.
//!
//! Default scale 0.01 keeps the probing baseline tractable; pass
//! `--scale 1` for paper-scale cardinalities.

use skyup_bench::figures::small_figure;
use skyup_bench::parse_args;
use skyup_data::synthetic::Distribution;

fn main() {
    let args = parse_args(0.01);
    println!("Figure 7 — independent small synthetic");
    small_figure(Distribution::Independent, &args);
}
