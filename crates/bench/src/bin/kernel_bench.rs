//! Dominance-kernel shoot-out: scalar row loop vs. branch-free columnar
//! kernel vs. zone-mapped columnar scan, as JSON.
//!
//! Two datasets isolate the two tentpole wins:
//!
//! * `uniform` — independent points on the unit cube, stored in arrival
//!   order. Block MBRs all hug the origin, so zone maps barely fire and
//!   the columnar-vs-scalar gap measures the autovectorized mask loop
//!   alone.
//! * `skewed` — correlated points sorted by coordinate sum before
//!   insertion, probed with targets from the lower half of that order.
//!   Blocks are coherent (all-good or all-bad products together), so
//!   trailing blocks have min corners above the targets and the zone
//!   maps skip them wholesale — the BBS-style pruning win, compounding
//!   the vectorization win.
//!
//! Timing covers the *collect* scan (enumerate every dominator — the
//! screening shape `run_probe_batch` issues, no early exit, so the
//! conservation law `blocks + skipped == total blocks` is exact) and
//! the *membership* scan (first-dominator early exit). The counts —
//! dominated targets, dominator totals, blocks scanned and skipped —
//! are single-threaded and deterministic, so the gate pins them
//! exactly; only wall-clock gets the one-sided tolerance. Every variant
//! is checked position-for-position against the scalar oracle before
//! its timing is trusted. Set `SKYUP_BENCH_OUT` to redirect the report
//! (CI smoke runs do).

use std::time::Duration;

use skyup_bench::{fmt_duration, parse_args, time};
use skyup_data::synthetic::{generate, Distribution, SyntheticConfig};
use skyup_geom::dominance::dominates;
use skyup_geom::{collect_dominators_cols, dominated_by_any_cols, ColumnarPoints, DOM_BLOCK};
use skyup_obs::json::Json;

/// Timing samples per (dataset, variant, operation); the median is
/// reported.
const SAMPLES: usize = 5;
const DIMS: usize = 4;

fn median_wall(mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..SAMPLES).map(|_| time(&mut f).0).collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One committed workload: a window of stored points and the probe
/// targets scanned against it.
struct Dataset {
    name: &'static str,
    window: Vec<Vec<f64>>,
    targets: Vec<Vec<f64>>,
}

fn rows_of(points: &skyup_geom::PointStore) -> Vec<Vec<f64>> {
    points.iter().map(|(_, c)| c.to_vec()).collect()
}

fn build_datasets(n: usize, m: usize, seed: u64) -> Vec<Dataset> {
    // Uniform: arrival order, independent targets.
    let window = rows_of(&generate(
        n,
        &SyntheticConfig::unit(DIMS, Distribution::Independent, seed),
    ));
    let targets = rows_of(&generate(
        m,
        &SyntheticConfig::unit(DIMS, Distribution::Independent, seed ^ 0x7a17),
    ));
    let uniform = Dataset {
        name: "uniform",
        window,
        targets,
    };

    // Skewed: correlated points sorted by coordinate sum, so blocks are
    // coherent; targets sampled from the lower half of the same order
    // (real window points, duplicates included) leave the trailing
    // blocks provably dominator-free.
    let mut window = rows_of(&generate(
        n,
        &SyntheticConfig::unit(DIMS, Distribution::Correlated, seed ^ 0x51),
    ));
    window.sort_by(|a, b| {
        let (sa, sb) = (a.iter().sum::<f64>(), b.iter().sum::<f64>());
        sa.total_cmp(&sb)
    });
    let step = (n / 2).max(1).div_ceil(m).max(1);
    let targets: Vec<Vec<f64>> = window.iter().take(n / 2).step_by(step).cloned().collect();
    let skewed = Dataset {
        name: "skewed",
        window,
        targets,
    };

    vec![uniform, skewed]
}

/// Per-variant outcome: the timings plus the machine-independent counts
/// and the full dominator position lists (for the oracle comparison).
struct VariantOut {
    variant: &'static str,
    membership_wall: Duration,
    collect_wall: Duration,
    dominated_targets: u64,
    dominators_total: u64,
    /// Blocks scanned / skipped across the collect pass (full
    /// enumeration, so the conservation law applies per target).
    blocks_scanned: u64,
    blocks_skipped: u64,
    conservation_ok: bool,
    positions: Vec<Vec<u32>>,
}

/// Scalar oracle: plain row loop, `dominates` per point. Charged the
/// full block count so the report rows stay uniform.
fn run_scalar(ds: &Dataset) -> VariantOut {
    let blocks_per_scan = ds.window.len().div_ceil(DOM_BLOCK) as u64;
    let positions: Vec<Vec<u32>> = ds
        .targets
        .iter()
        .map(|t| {
            ds.window
                .iter()
                .enumerate()
                .filter(|(_, p)| dominates(p, t))
                .map(|(i, _)| i as u32)
                .collect()
        })
        .collect();
    let membership_wall = median_wall(|| {
        let mut n = 0u64;
        for t in &ds.targets {
            n += u64::from(ds.window.iter().any(|p| dominates(p, t)));
        }
        std::hint::black_box(n);
    });
    let mut scratch: Vec<u32> = Vec::new();
    let collect_wall = median_wall(|| {
        let mut n = 0u64;
        for t in &ds.targets {
            scratch.clear();
            scratch.extend(
                ds.window
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| dominates(p, t))
                    .map(|(i, _)| i as u32),
            );
            n += scratch.len() as u64;
        }
        std::hint::black_box(n);
    });
    VariantOut {
        variant: "scalar",
        membership_wall,
        collect_wall,
        dominated_targets: positions.iter().filter(|p| !p.is_empty()).count() as u64,
        dominators_total: positions.iter().map(|p| p.len() as u64).sum(),
        blocks_scanned: blocks_per_scan * ds.targets.len() as u64,
        blocks_skipped: 0,
        conservation_ok: true,
        positions,
    }
}

/// The branch-free columnar kernel with no zone maps: the raw
/// autovectorized mask loop over a dims-major buffer.
fn run_columnar(ds: &Dataset) -> VariantOut {
    let n = ds.window.len();
    let stride = n;
    let mut cols = vec![0.0f64; DIMS * stride];
    for (i, p) in ds.window.iter().enumerate() {
        for (d, &x) in p.iter().enumerate() {
            cols[d * stride + i] = x;
        }
    }
    let mut positions: Vec<Vec<u32>> = Vec::with_capacity(ds.targets.len());
    let (mut blocks_scanned, mut skipped) = (0u64, 0u64);
    let total_blocks = n.div_ceil(DOM_BLOCK) as u64;
    let mut conservation_ok = true;
    for t in &ds.targets {
        let mut out = Vec::new();
        let scan = collect_dominators_cols(&cols, stride, n, t, &mut out);
        blocks_scanned += scan.blocks;
        skipped += scan.skipped;
        conservation_ok &= scan.blocks + scan.skipped == total_blocks;
        positions.push(out);
    }
    let membership_wall = median_wall(|| {
        let mut hits = 0u64;
        for t in &ds.targets {
            hits += u64::from(dominated_by_any_cols(&cols, stride, n, t).dominated);
        }
        std::hint::black_box(hits);
    });
    let mut scratch: Vec<u32> = Vec::new();
    let collect_wall = median_wall(|| {
        let mut found = 0u64;
        for t in &ds.targets {
            scratch.clear();
            collect_dominators_cols(&cols, stride, n, t, &mut scratch);
            found += scratch.len() as u64;
        }
        std::hint::black_box(found);
    });
    VariantOut {
        variant: "columnar",
        membership_wall,
        collect_wall,
        dominated_targets: positions.iter().filter(|p| !p.is_empty()).count() as u64,
        dominators_total: positions.iter().map(|p| p.len() as u64).sum(),
        blocks_scanned,
        blocks_skipped: skipped,
        conservation_ok,
        positions,
    }
}

/// The full [`ColumnarPoints`] scan: the same vectorized kernel behind
/// per-block zone maps.
fn run_zoned(ds: &Dataset) -> VariantOut {
    let mut cols = ColumnarPoints::new(DIMS);
    for p in &ds.window {
        cols.push(p);
    }
    let total_blocks = cols.blocks() as u64;
    let mut positions: Vec<Vec<u32>> = Vec::with_capacity(ds.targets.len());
    let (mut blocks_scanned, mut skipped) = (0u64, 0u64);
    let mut conservation_ok = true;
    for t in &ds.targets {
        let mut out = Vec::new();
        let scan = cols.collect_dominators(t, &mut out);
        blocks_scanned += scan.blocks;
        skipped += scan.skipped;
        conservation_ok &= scan.blocks + scan.skipped == total_blocks;
        positions.push(out);
    }
    let membership_wall = median_wall(|| {
        let mut hits = 0u64;
        for t in &ds.targets {
            hits += u64::from(cols.dominated_by_any(t).dominated);
        }
        std::hint::black_box(hits);
    });
    let mut scratch: Vec<u32> = Vec::new();
    let collect_wall = median_wall(|| {
        let mut found = 0u64;
        for t in &ds.targets {
            scratch.clear();
            cols.collect_dominators(t, &mut scratch);
            found += scratch.len() as u64;
        }
        std::hint::black_box(found);
    });
    VariantOut {
        variant: "zoned",
        membership_wall,
        collect_wall,
        dominated_targets: positions.iter().filter(|p| !p.is_empty()).count() as u64,
        dominators_total: positions.iter().map(|p| p.len() as u64).sum(),
        blocks_scanned,
        blocks_skipped: skipped,
        conservation_ok,
        positions,
    }
}

fn main() {
    let args = parse_args(0.05);
    let n = args.scaled(800_000);
    let m = args.scaled(10_000);

    println!(
        "dominance kernel bench: |window|={n} |targets|={m} d={DIMS} seed={}",
        args.seed
    );

    let datasets = build_datasets(n, m, args.seed);
    let mut dataset_docs = Vec::new();
    let mut all_identical = true;
    let mut all_conserved = true;
    let mut skewed_skipped = 0u64;
    // (scalar, zoned) collect walls on the skewed dataset and
    // (scalar, columnar) on uniform, for the acceptance block.
    let mut skewed_walls = (Duration::ZERO, Duration::ZERO);
    let mut uniform_walls = (Duration::ZERO, Duration::ZERO);

    for ds in &datasets {
        let total_blocks = ds.window.len().div_ceil(DOM_BLOCK) as u64 * ds.targets.len() as u64;
        let scalar = run_scalar(ds);
        let variants = [scalar, run_columnar(ds), run_zoned(ds)];
        println!(
            "  {} ({} targets, {} blocks per scan):",
            ds.name,
            ds.targets.len(),
            ds.window.len().div_ceil(DOM_BLOCK)
        );
        let mut rows = Vec::new();
        for v in &variants {
            let identical = v.positions == variants[0].positions;
            all_identical &= identical;
            all_conserved &= v.conservation_ok;
            if ds.name == "skewed" && v.variant == "zoned" {
                skewed_skipped = v.blocks_skipped;
                skewed_walls.1 = v.collect_wall;
            }
            if ds.name == "skewed" && v.variant == "scalar" {
                skewed_walls.0 = v.collect_wall;
            }
            if ds.name == "uniform" && v.variant == "scalar" {
                uniform_walls.0 = v.collect_wall;
            }
            if ds.name == "uniform" && v.variant == "columnar" {
                uniform_walls.1 = v.collect_wall;
            }
            println!(
                "    {:<9} membership {:>10}  collect {:>10}  dominated={} dominators={} \
                 blocks={} skipped={}{}",
                v.variant,
                fmt_duration(v.membership_wall),
                fmt_duration(v.collect_wall),
                v.dominated_targets,
                v.dominators_total,
                v.blocks_scanned,
                v.blocks_skipped,
                if identical { "" } else { "  MISMATCH" },
            );
            rows.push(Json::obj(vec![
                ("variant", Json::Str(v.variant.into())),
                (
                    "membership_wall_us",
                    Json::Num(v.membership_wall.as_micros() as f64),
                ),
                (
                    "collect_wall_us",
                    Json::Num(v.collect_wall.as_micros() as f64),
                ),
                ("dominated_targets", Json::Num(v.dominated_targets as f64)),
                ("dominators_total", Json::Num(v.dominators_total as f64)),
                ("blocks_scanned", Json::Num(v.blocks_scanned as f64)),
                ("blocks_skipped", Json::Num(v.blocks_skipped as f64)),
                ("conservation_ok", Json::Bool(v.conservation_ok)),
                ("identical_to_scalar", Json::Bool(identical)),
            ]));
        }
        dataset_docs.push(Json::obj(vec![
            ("dataset", Json::Str(ds.name.into())),
            ("targets", Json::Num(ds.targets.len() as f64)),
            ("total_blocks", Json::Num(total_blocks as f64)),
            ("runs", Json::Arr(rows)),
        ]));
    }

    let zoned_speedup_skewed = skewed_walls.0.as_secs_f64() / skewed_walls.1.as_secs_f64();
    let columnar_speedup_uniform = uniform_walls.0.as_secs_f64() / uniform_walls.1.as_secs_f64();
    println!(
        "  acceptance: identical={all_identical} conserved={all_conserved} \
         skewed_skipped={skewed_skipped} zoned_speedup_skewed={zoned_speedup_skewed:.2}x \
         columnar_speedup_uniform={columnar_speedup_uniform:.2}x",
    );

    let doc = Json::obj(vec![
        ("schema", Json::Str("skyup-bench-kernel/1".into())),
        (
            "workload",
            Json::obj(vec![
                ("n_points", Json::Num(n as f64)),
                ("n_targets", Json::Num(m as f64)),
                ("dims", Json::Num(DIMS as f64)),
                ("seed", Json::Num(args.seed as f64)),
                (
                    "uniform",
                    Json::Str("independent unit cube, arrival order".into()),
                ),
                (
                    "skewed",
                    Json::Str("correlated, sorted by coord sum; targets from lower half".into()),
                ),
            ]),
        ),
        ("samples_per_config", Json::Num(SAMPLES as f64)),
        ("datasets", Json::Arr(dataset_docs)),
        (
            "acceptance",
            Json::obj(vec![
                ("all_identical_to_scalar", Json::Bool(all_identical)),
                ("conservation_ok", Json::Bool(all_conserved)),
                ("skewed_blocks_skipped", Json::Num(skewed_skipped as f64)),
                (
                    "zoned_collect_beats_scalar_skewed",
                    Json::Bool(skewed_walls.1 < skewed_walls.0),
                ),
                ("zoned_speedup_skewed", Json::Num(zoned_speedup_skewed)),
                (
                    "columnar_speedup_uniform",
                    Json::Num(columnar_speedup_uniform),
                ),
            ]),
        ),
    ]);

    let path = std::env::var("SKYUP_BENCH_OUT")
        .unwrap_or_else(|_| "bench_results/BENCH_kernel.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&path, format!("{}\n", doc.render_pretty()))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");

    // Self-asserts: CI smoke runs rely on these even without a gate.
    assert!(
        all_identical,
        "columnar or zoned dominator lists diverged from the scalar oracle"
    );
    assert!(
        all_conserved,
        "zone-map accounting broke the blocks + skipped == total conservation law"
    );
    assert!(
        skewed_skipped > 0,
        "zone maps skipped nothing on the skewed dataset — the pruning path is dead"
    );
}
