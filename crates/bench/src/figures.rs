//! Shared figure drivers for the synthetic-data experiments
//! (Figures 6–11). Each paper figure is one distribution fed to one of
//! these drivers.

use crate::harness::{fmt_duration, BenchArgs};
use crate::params::{k_sweep, LargeParams, SmallParams};
use crate::report::Table;
use crate::runner::{build_trees, progressive_times, run_improved, run_join};
use skyup_core::join::LowerBound;
use skyup_data::synthetic::{paper_competitors, paper_products, Distribution};

/// Figures 6–7: improved probing vs. join (NLB) on small synthetic data.
/// Panels: (a) vary |P|, (b) vary |T|, (c) vary d.
pub fn small_figure(dist: Distribution, args: &BenchArgs) {
    let params = SmallParams::new(args);
    println!(
        "small synthetic, {} distribution, scale {} (|P|*={}, |T|*={}, d*={})",
        dist.name(),
        args.scale,
        params.p_default,
        params.t_default,
        params.d_default
    );

    // Panel (a): vary |P|.
    let mut table = Table::new("(a) vary |P|", &["|P|", "improved probing", "join-NLB"]);
    for (i, &np) in SmallParams::p_sweep(args).iter().enumerate() {
        let p = paper_competitors(np, params.d_default, dist, args.seed + i as u64);
        let t = paper_products(params.t_default, params.d_default, dist, args.seed + 1000);
        let (rp, rt) = build_trees(&p, &t);
        let probing = run_improved(&p, &rp, &t, 1);
        let join = run_join(&p, &rp, &t, &rt, 1, LowerBound::Naive);
        table.row(&[np.to_string(), fmt_duration(probing), fmt_duration(join)]);
    }
    println!("{table}");

    // Panel (b): vary |T|.
    let mut table = Table::new("(b) vary |T|", &["|T|", "improved probing", "join-NLB"]);
    let p = paper_competitors(params.p_default, params.d_default, dist, args.seed);
    for (i, &nt) in SmallParams::t_sweep(args).iter().enumerate() {
        let t = paper_products(nt, params.d_default, dist, args.seed + 2000 + i as u64);
        let (rp, rt) = build_trees(&p, &t);
        let probing = run_improved(&p, &rp, &t, 1);
        let join = run_join(&p, &rp, &t, &rt, 1, LowerBound::Naive);
        table.row(&[nt.to_string(), fmt_duration(probing), fmt_duration(join)]);
    }
    println!("{table}");

    // Panel (c): vary d.
    let mut table = Table::new("(c) vary d", &["d", "improved probing", "join-NLB"]);
    for &d in &SmallParams::d_sweep() {
        let p = paper_competitors(params.p_default, d, dist, args.seed + d as u64);
        let t = paper_products(params.t_default, d, dist, args.seed + 3000 + d as u64);
        let (rp, rt) = build_trees(&p, &t);
        let probing = run_improved(&p, &rp, &t, 1);
        let join = run_join(&p, &rp, &t, &rt, 1, LowerBound::Naive);
        table.row(&[d.to_string(), fmt_duration(probing), fmt_duration(join)]);
    }
    println!("{table}");
    println!("expected shape: join faster by orders of magnitude; probing grows with |T| and d");
}

/// Figures 8–9: the three lower bounds on large synthetic data.
/// Panels: (a) vary |P|, (b) vary |T|, (c) vary d.
pub fn large_figure(dist: Distribution, args: &BenchArgs) {
    let params = LargeParams::new(args);
    println!(
        "large synthetic, {} distribution, scale {} (|P|*={}, |T|*={}, d*={})",
        dist.name(),
        args.scale,
        params.p_default,
        params.t_default,
        params.d_default
    );

    let run_bounds = |p: &skyup_geom::PointStore, t: &skyup_geom::PointStore| -> Vec<String> {
        let (rp, rt) = build_trees(p, t);
        LowerBound::ALL
            .iter()
            .map(|&b| fmt_duration(run_join(p, &rp, t, &rt, 1, b)))
            .collect()
    };

    let mut table = Table::new("(a) vary |P|", &["|P|", "NLB", "CLB", "ALB"]);
    for (i, &np) in LargeParams::p_sweep(args).iter().enumerate() {
        let p = paper_competitors(np, params.d_default, dist, args.seed + i as u64);
        let t = paper_products(params.t_default, params.d_default, dist, args.seed + 1000);
        let cells = run_bounds(&p, &t);
        table.row(&[
            np.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    println!("{table}");

    let mut table = Table::new("(b) vary |T|", &["|T|", "NLB", "CLB", "ALB"]);
    let p = paper_competitors(params.p_default, params.d_default, dist, args.seed);
    for (i, &nt) in LargeParams::t_sweep(args).iter().enumerate() {
        let t = paper_products(nt, params.d_default, dist, args.seed + 2000 + i as u64);
        let cells = run_bounds(&p, &t);
        table.row(&[
            nt.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    println!("{table}");

    let mut table = Table::new("(c) vary d", &["d", "NLB", "CLB", "ALB"]);
    for &d in &LargeParams::d_sweep() {
        let p = paper_competitors(params.p_default, d, dist, args.seed + d as u64);
        let t = paper_products(params.t_default, d, dist, args.seed + 3000 + d as u64);
        let cells = run_bounds(&p, &t);
        table.row(&[
            d.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: roughly linear in |P|; flat in |T|; growing with d \
         (marked increase at d = 6); ALB slightly ahead on anti-correlated data"
    );
}

/// Figures 10–11: progressiveness on large synthetic data — time to the
/// k-th result for k = 1..20 under each bound.
pub fn progressive_figure(dist: Distribution, args: &BenchArgs) {
    let params = LargeParams::new(args);
    println!(
        "progressiveness, {} distribution, scale {} (|P|={}, |T|={}, d={})",
        dist.name(),
        args.scale,
        params.p_default,
        params.t_default,
        params.d_default
    );

    let p = paper_competitors(params.p_default, params.d_default, dist, args.seed);
    let t = paper_products(params.t_default, params.d_default, dist, args.seed + 1);
    let (rp, rt) = build_trees(&p, &t);

    let ks = k_sweep();
    let series: Vec<Vec<(usize, std::time::Duration)>> = LowerBound::ALL
        .iter()
        .map(|&b| progressive_times(&p, &rp, &t, &rt, &ks, b))
        .collect();

    let mut table = Table::new("Time to k-th result", &["k", "NLB", "CLB", "ALB"]);
    for (i, &k) in ks.iter().enumerate() {
        table.row(&[
            k.to_string(),
            fmt_duration(series[0][i].1),
            fmt_duration(series[1][i].1),
            fmt_duration(series[2][i].1),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: NLB degrades past k = 5 on anti-correlated data; \
         CLB/ALB grow gently; little separation on independent data"
    );
}
