//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! STR packs `n` points into `ceil(n / M)` full leaves by recursively
//! sorting and slicing the data one dimension at a time, then packs the
//! resulting nodes the same way level by level. It produces well-shaped,
//! nearly 100%-full trees and is the standard way to index a static data
//! set — which is exactly how the paper uses its R-trees (both `P` and
//! `T` are loaded into memory before the algorithms run).

use crate::node::{Node, NodeId};
use crate::tree::{RTree, RTreeParams};
use crate::{PointStore, Rect};

impl RTree {
    /// Builds an R-tree over every point of `store` using STR packing.
    pub fn bulk_load(store: &PointStore, params: RTreeParams) -> Self {
        let dims = store.dims();
        let mut tree = RTree::new(dims, params);
        if store.is_empty() {
            return tree;
        }

        // Level 0: pack points into leaves.
        let mut items: Vec<(Vec<f64>, u32)> = store
            .iter()
            .map(|(id, coords)| (coords.to_vec(), id.0))
            .collect();
        let groups = str_partition(&mut items, dims, params.max_entries);
        let mut level_nodes: Vec<NodeId> = Vec::with_capacity(groups.len());
        for group in groups {
            let mut node = Node::new_leaf(dims);
            let mut mbr = Rect::empty(dims);
            for (coords, raw) in group {
                mbr.expand_point(&coords);
                node.points.push(skyup_geom::PointId(raw));
            }
            node.mbr = mbr;
            level_nodes.push(tree.alloc(node));
        }

        // Upper levels: pack node MBR centers until one root remains.
        let mut level = 1u32;
        while level_nodes.len() > 1 {
            let mut items: Vec<(Vec<f64>, u32)> = level_nodes
                .iter()
                .map(|&id| (tree.node(id).mbr.center(), id.0))
                .collect();
            let groups = str_partition(&mut items, dims, params.max_entries);
            let mut next: Vec<NodeId> = Vec::with_capacity(groups.len());
            for group in groups {
                let mut node = Node::new_internal(dims, level);
                let mut mbr = Rect::empty(dims);
                for (_, raw) in group {
                    let child = NodeId(raw);
                    mbr.expand(&tree.node(child).mbr);
                    node.children.push(child);
                }
                node.mbr = mbr;
                next.push(tree.alloc(node));
            }
            level_nodes = next;
            level += 1;
        }

        tree.root = level_nodes[0];
        tree.num_points = store.len();
        tree
    }
}

/// Recursively sort-tile the items into groups of at most `cap`, keyed by
/// the first element (a coordinate vector used for ordering).
fn str_partition(
    items: &mut [(Vec<f64>, u32)],
    dims: usize,
    cap: usize,
) -> Vec<Vec<(Vec<f64>, u32)>> {
    let mut out = Vec::with_capacity(items.len().div_ceil(cap));
    str_rec(items, 0, dims, cap, &mut out);
    out
}

fn str_rec(
    items: &mut [(Vec<f64>, u32)],
    dim: usize,
    dims: usize,
    cap: usize,
    out: &mut Vec<Vec<(Vec<f64>, u32)>>,
) {
    if items.len() <= cap {
        out.push(items.to_vec());
        return;
    }
    items.sort_unstable_by(|a, b| a.0[dim].total_cmp(&b.0[dim]));
    if dim + 1 == dims {
        for chunk in items.chunks(cap) {
            out.push(chunk.to_vec());
        }
        return;
    }
    let pages = items.len().div_ceil(cap);
    let remaining = (dims - dim) as f64;
    let slabs = (pages as f64).powf(1.0 / remaining).ceil() as usize;
    let slab_size = items.len().div_ceil(slabs.max(1));
    for chunk in items.chunks_mut(slab_size.max(cap)) {
        str_rec(chunk, dim + 1, dims, cap, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyup_geom::PointId;

    fn grid_store(side: usize) -> PointStore {
        let mut s = PointStore::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f64, j as f64]);
            }
        }
        s
    }

    #[test]
    fn single_point_tree() {
        let mut s = PointStore::new(2);
        s.push(&[0.5, 0.5]);
        let t = RTree::bulk_load(&s, RTreeParams::with_max_entries(4));
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.iter_points(), vec![PointId(0)]);
    }

    #[test]
    fn all_points_present_exactly_once() {
        let s = grid_store(20); // 400 points
        let t = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
        let mut pts = t.iter_points();
        pts.sort();
        let expected: Vec<PointId> = s.ids().collect();
        assert_eq!(pts, expected);
        assert!(t.height() >= 3, "400 points at fanout 8 need >= 3 levels");
    }

    #[test]
    fn mbrs_contain_children() {
        let s = grid_store(15);
        let t = RTree::bulk_load(&s, RTreeParams::with_max_entries(10));
        t.validate(&s).expect("bulk-loaded tree must validate");
    }

    #[test]
    fn leaves_nearly_full() {
        let s = grid_store(16); // 256 points
        let t = RTree::bulk_load(&s, RTreeParams::with_max_entries(16));
        // STR packs all but boundary leaves full; 256/16 = 16 exact.
        let stats = t.stats();
        assert_eq!(stats.num_points, 256);
        assert!(
            stats.avg_leaf_fill > 0.9,
            "fill was {}",
            stats.avg_leaf_fill
        );
    }

    #[test]
    fn empty_store_gives_empty_tree() {
        let s = PointStore::new(3);
        let t = RTree::bulk_load(&s, RTreeParams::default());
        assert!(t.is_empty());
        t.validate(&s).unwrap();
    }
}
