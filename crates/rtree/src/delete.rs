//! Point deletion with tree condensation (Guttman's `CondenseTree`).
//!
//! Product catalogs change: competitors get discontinued, own products
//! get retired. Deletion locates the leaf holding the point, removes it,
//! dissolves any node that underflows below the minimum fill (its
//! remaining points are reinserted), and shrinks the root when it is
//! left with a single child.

use crate::node::{EntryRef, NodeId};
use crate::tree::RTree;
use crate::{PointId, PointStore, Rect};

enum Outcome {
    NotFound,
    /// Point removed below this child; `dissolve` means the child fell
    /// under the minimum fill and its contents are queued for reinsert.
    Removed {
        dissolve: bool,
    },
}

impl RTree {
    /// Removes point `pid` from the tree. Returns `true` when the point
    /// was present. Coordinates are looked up in `store`, which must be
    /// the store the tree indexes (the point itself must still be
    /// present in the store — stores are append-only).
    pub fn remove(&mut self, store: &PointStore, pid: PointId) -> bool {
        assert_eq!(store.dims(), self.dims, "store dimensionality mismatch");
        let coords = store.point(pid).to_vec();
        let mut reinsert: Vec<PointId> = Vec::new();
        let outcome = self.remove_rec(store, self.root, pid, &coords, &mut reinsert);
        match outcome {
            Outcome::NotFound => false,
            Outcome::Removed { dissolve } => {
                // A dissolving root just means the tree is small; the
                // root may hold fewer than `m` entries.
                let _ = dissolve;
                self.num_points -= 1;

                // Shrink the root while it is an internal node with a
                // single child.
                while !self.node(self.root).is_leaf() && self.node(self.root).children.len() == 1 {
                    self.root = self.node(self.root).children[0];
                }
                // An internal root that lost all children collapses to an
                // empty leaf.
                if !self.node(self.root).is_leaf() && self.node(self.root).children.is_empty() {
                    let dims = self.dims;
                    let root = self.root;
                    let node = self.node_mut(root);
                    node.level = 0;
                    node.mbr = Rect::empty(dims);
                }

                // Reinsert points from dissolved nodes without disturbing
                // the point count.
                for p in reinsert {
                    let saved = self.num_points;
                    self.insert(store, p);
                    self.num_points = saved;
                }
                true
            }
        }
    }

    fn remove_rec(
        &mut self,
        store: &PointStore,
        node_id: NodeId,
        pid: PointId,
        coords: &[f64],
        reinsert: &mut Vec<PointId>,
    ) -> Outcome {
        if self.node(node_id).is_leaf() {
            let node = self.node_mut(node_id);
            let Some(pos) = node.points.iter().position(|&p| p == pid) else {
                return Outcome::NotFound;
            };
            node.points.swap_remove(pos);
            self.refresh_mbr(store, node_id);
            let dissolve = self.node(node_id).points.len() < self.params.min_entries;
            return Outcome::Removed { dissolve };
        }

        let candidates: Vec<NodeId> = self
            .node(node_id)
            .children
            .iter()
            .copied()
            .filter(|&c| self.node(c).mbr.contains_point(coords))
            .collect();
        for child in candidates {
            match self.remove_rec(store, child, pid, coords, reinsert) {
                Outcome::NotFound => continue,
                Outcome::Removed { dissolve } => {
                    if dissolve {
                        // Queue the child's remaining points and unlink it.
                        self.collect_points(EntryRef::Node(child), reinsert);
                        let node = self.node_mut(node_id);
                        let pos = node
                            .children
                            .iter()
                            .position(|&c| c == child)
                            .expect("child is present");
                        node.children.swap_remove(pos);
                    }
                    self.refresh_mbr(store, node_id);
                    let dissolve_self = self.node(node_id).children.len() < self.params.min_entries;
                    return Outcome::Removed {
                        dissolve: dissolve_self,
                    };
                }
            }
        }
        Outcome::NotFound
    }

    /// Recomputes one node's MBR from its direct contents.
    fn refresh_mbr(&mut self, store: &PointStore, node_id: NodeId) {
        let dims = self.dims;
        let mut mbr = Rect::empty(dims);
        let node = self.node(node_id);
        if node.is_leaf() {
            for &p in &node.points {
                mbr.expand_point(store.point(p));
            }
        } else {
            for &c in &node.children.clone() {
                mbr.expand(&self.nodes[c.index()].mbr);
            }
        }
        self.node_mut(node_id).mbr = mbr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeParams;

    fn store_grid(side: usize) -> PointStore {
        let mut s = PointStore::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f64, j as f64]);
            }
        }
        s
    }

    #[test]
    fn remove_existing_point() {
        let s = store_grid(10);
        let mut t = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
        assert!(t.remove(&s, PointId(42)));
        assert_eq!(t.len(), 99);
        assert!(
            !t.contains_coords(&s, s.point(PointId(42))) || {
                // Another point may share coordinates in general; in a grid
                // coordinates are unique, so the probe must now be empty.
                false
            }
        );
        // The point set is exactly the original minus the victim.
        let mut pts = t.iter_points();
        pts.sort();
        let expected: Vec<PointId> = s.ids().filter(|&p| p != PointId(42)).collect();
        assert_eq!(pts, expected);
    }

    #[test]
    fn remove_missing_point_is_noop() {
        let mut s = store_grid(5);
        let mut t = RTree::bulk_load(&s, RTreeParams::with_max_entries(4));
        assert!(t.remove(&s, PointId(7)));
        // Second removal of the same id fails cleanly.
        assert!(!t.remove(&s, PointId(7)));
        assert_eq!(t.len(), 24);
        // Structure still valid after failed removal... but validate
        // requires the store to match; rebuild expectation by pushing a
        // sentinel is unnecessary — validate() checks ids 0..len, so use
        // the manual invariants instead.
        let _ = &mut s;
    }

    #[test]
    fn drain_the_whole_tree() {
        let s = store_grid(8);
        let mut t = RTree::bulk_load(&s, RTreeParams::with_max_entries(4));
        for id in s.ids() {
            assert!(t.remove(&s, id), "{id:?} should be present");
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.iter_points().is_empty());
        // The tree remains usable.
        let range = Rect::new(&[-10.0, -10.0], &[100.0, 100.0]);
        assert!(t.range_query(&s, &range).is_empty());
    }

    #[test]
    fn interleaved_insert_and_remove_stay_consistent() {
        let mut s = PointStore::new(2);
        let mut t = RTree::new(2, RTreeParams::with_max_entries(4));
        let mut live: Vec<PointId> = Vec::new();
        let mut x = 12345u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..600 {
            if round % 3 == 2 && !live.is_empty() {
                let victim = live.swap_remove((next() as usize) % live.len());
                assert!(t.remove(&s, victim));
            } else {
                let a = (next() % 1000) as f64 / 10.0;
                let b = (next() % 1000) as f64 / 10.0;
                let id = s.push(&[a, b]);
                t.insert(&s, id);
                live.push(id);
            }
            assert_eq!(t.len(), live.len(), "round {round}");
        }
        let mut pts = t.iter_points();
        pts.sort();
        live.sort();
        assert_eq!(pts, live);
        // MBRs stay tight and levels consistent even after churn: check
        // queries against a scan.
        let range = Rect::new(&[10.0, 10.0], &[60.0, 60.0]);
        let mut got = t.range_query(&s, &range);
        got.sort();
        let mut want: Vec<PointId> = live
            .iter()
            .copied()
            .filter(|&p| range.contains_point(s.point(p)))
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn removal_with_duplicate_coordinates() {
        let mut s = PointStore::new(2);
        let ids: Vec<PointId> = (0..10).map(|_| s.push(&[1.0, 1.0])).collect();
        let mut t = RTree::bulk_load(&s, RTreeParams::with_max_entries(4));
        // Remove one specific duplicate: the others must remain.
        assert!(t.remove(&s, ids[3]));
        assert_eq!(t.len(), 9);
        let pts = t.iter_points();
        assert!(!pts.contains(&ids[3]));
        assert_eq!(pts.len(), 9);
    }
}
