//! One-at-a-time insertion (Guttman's R-tree with quadratic split).

use crate::node::{Node, NodeId};
use crate::split::quadratic_split;
use crate::tree::{RTree, RTreeParams};
use crate::{PointId, PointStore, Rect};

impl RTree {
    /// Builds a tree by inserting every point of `store` one at a time.
    /// Slower and produces a worse-shaped tree than [`RTree::bulk_load`];
    /// provided for incremental use cases and for the ablation study.
    pub fn from_insertion(store: &PointStore, params: RTreeParams) -> Self {
        let mut tree = RTree::new(store.dims(), params);
        for id in store.ids() {
            tree.insert(store, id);
        }
        tree
    }

    /// Inserts point `pid` (whose coordinates live in `store`).
    ///
    /// # Panics
    /// Panics if `pid` is out of bounds for `store` or if the store's
    /// dimensionality differs from the tree's.
    pub fn insert(&mut self, store: &PointStore, pid: PointId) {
        assert_eq!(
            store.dims(),
            self.dims,
            "store dimensionality does not match tree"
        );
        let coords = store.point(pid); // bounds check
        let _ = coords;
        if let Some(sibling) = self.insert_rec(store, self.root, pid) {
            // Root split: grow the tree by one level.
            let old_root = self.root;
            let level = self.node(old_root).level + 1;
            let mut root = Node::new_internal(self.dims, level);
            let mut mbr = self.node(old_root).mbr.clone();
            mbr.expand(&self.node(sibling).mbr);
            root.children.push(old_root);
            root.children.push(sibling);
            root.mbr = mbr;
            self.root = self.alloc(root);
        }
        self.num_points += 1;
    }

    /// Recursive insert; returns a newly created sibling node if `node`
    /// was split.
    fn insert_rec(&mut self, store: &PointStore, node: NodeId, pid: PointId) -> Option<NodeId> {
        let point_rect = Rect::point(store.point(pid));
        if self.node(node).mbr.is_empty_accumulator() {
            self.node_mut(node).mbr = point_rect.clone();
        } else {
            self.node_mut(node).mbr.expand(&point_rect);
        }

        if self.node(node).is_leaf() {
            self.node_mut(node).points.push(pid);
            if self.node(node).points.len() > self.params.max_entries {
                return Some(self.split_leaf(store, node));
            }
            return None;
        }

        let child = self.choose_subtree(node, &point_rect);
        if let Some(new_child) = self.insert_rec(store, child, pid) {
            self.node_mut(node).children.push(new_child);
            if self.node(node).children.len() > self.params.max_entries {
                return Some(self.split_internal(node));
            }
        }
        None
    }

    /// ChooseSubtree: least area enlargement, ties by smaller area.
    fn choose_subtree(&self, node: NodeId, rect: &Rect) -> NodeId {
        let children = &self.node(node).children;
        debug_assert!(!children.is_empty());
        let mut best = children[0];
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for &c in children {
            let mbr = &self.node(c).mbr;
            let enl = mbr.enlargement(rect);
            let area = mbr.area();
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = c;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    fn split_leaf(&mut self, store: &PointStore, node: NodeId) -> NodeId {
        let points = std::mem::take(&mut self.node_mut(node).points);
        let entries = points
            .into_iter()
            .map(|p| (Rect::point(store.point(p)), p.0))
            .collect();
        let (group_a, group_b) = quadratic_split(entries, self.params.min_entries);

        let mut sibling = Node::new_leaf(self.dims);
        fill_leaf(self.node_mut(node), &group_a);
        fill_leaf(&mut sibling, &group_b);
        self.alloc(sibling)
    }

    fn split_internal(&mut self, node: NodeId) -> NodeId {
        let children = std::mem::take(&mut self.node_mut(node).children);
        let entries = children
            .into_iter()
            .map(|c| (self.node(c).mbr.clone(), c.0))
            .collect();
        let (group_a, group_b) = quadratic_split(entries, self.params.min_entries);

        let level = self.node(node).level;
        let mut sibling = Node::new_internal(self.dims, level);
        fill_internal(self.node_mut(node), &group_a);
        fill_internal(&mut sibling, &group_b);
        self.alloc(sibling)
    }
}

fn fill_leaf(node: &mut Node, group: &[(Rect, u32)]) {
    node.points.clear();
    let mut mbr = Rect::empty(node.mbr.dims());
    for (r, raw) in group {
        mbr.expand(r);
        node.points.push(PointId(*raw));
    }
    node.mbr = mbr;
}

fn fill_internal(node: &mut Node, group: &[(Rect, u32)]) {
    node.children.clear();
    let mut mbr = Rect::empty(node.mbr.dims());
    for (r, raw) in group {
        mbr.expand(r);
        node.children.push(NodeId(*raw));
    }
    node.mbr = mbr;
}

/// Convenience: build with default parameters via insertion.
impl RTree {
    /// Builds a tree with [`RTreeParams::default`] by repeated insertion.
    pub fn from_insertion_default(store: &PointStore) -> Self {
        Self::from_insertion(store, RTreeParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_store(n: usize, dims: usize, seed: u64) -> PointStore {
        // Simple deterministic LCG so this test has no dev-dependency needs.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let coords: Vec<f64> = (0..dims).map(|_| next()).collect();
            s.push(&coords);
        }
        s
    }

    #[test]
    fn insertion_tree_validates() {
        let s = random_store(500, 3, 42);
        let t = RTree::from_insertion(&s, RTreeParams::with_max_entries(8));
        t.validate(&s).expect("insertion-built tree must validate");
        assert_eq!(t.len(), 500);
        let mut pts = t.iter_points();
        pts.sort();
        assert_eq!(pts, s.ids().collect::<Vec<_>>());
    }

    #[test]
    fn insert_into_bulk_loaded_tree() {
        let mut s = random_store(200, 2, 7);
        let mut t = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
        for _ in 0..100 {
            let id = s.push(&[2.0, 3.0]);
            t.insert(&s, id);
        }
        assert_eq!(t.len(), 300);
        t.validate(&s).unwrap();
    }

    #[test]
    fn root_split_grows_height() {
        let s = random_store(100, 2, 99);
        let mut t = RTree::new(2, RTreeParams::with_max_entries(4));
        let mut heights = Vec::new();
        for id in s.ids() {
            t.insert(&s, id);
            heights.push(t.height());
        }
        assert!(t.height() >= 3);
        assert!(
            heights.windows(2).all(|w| w[1] >= w[0]),
            "height never shrinks"
        );
        t.validate(&s).unwrap();
    }

    #[test]
    fn duplicate_points_allowed() {
        let mut s = PointStore::new(2);
        let mut t = RTree::new(2, RTreeParams::with_max_entries(4));
        for _ in 0..20 {
            let id = s.push(&[1.0, 1.0]);
            t.insert(&s, id);
        }
        assert_eq!(t.len(), 20);
        t.validate(&s).unwrap();
    }
}
