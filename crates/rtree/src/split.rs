//! Quadratic node splitting (Guttman 1984).
//!
//! Used by one-at-a-time insertion when a node overflows. Quadratic split
//! picks the pair of entries that would waste the most area if grouped
//! together as seeds, then assigns remaining entries to whichever group's
//! MBR grows least, respecting the minimum fill `m`.

use crate::Rect;

/// A splittable entry: an MBR plus an opaque payload (point id or node id).
pub(crate) type SplitEntry = (Rect, u32);

/// Splits `entries` (which overflows a node) into two groups, each with at
/// least `min` entries. Returns `(group_a, group_b)`.
///
/// # Panics
/// Panics if `entries.len() < 2 * min` (cannot satisfy minimum fill) —
/// callers only split overflowing nodes, where `len == M + 1 >= 2m + 1`.
pub(crate) fn quadratic_split(
    mut entries: Vec<SplitEntry>,
    min: usize,
) -> (Vec<SplitEntry>, Vec<SplitEntry>) {
    assert!(
        entries.len() >= 2 * min,
        "cannot split {} entries with minimum fill {}",
        entries.len(),
        min
    );

    let (seed_a, seed_b) = pick_seeds(&entries);
    // Remove the later index first so the earlier stays valid.
    let (hi, lo) = if seed_a > seed_b {
        (seed_a, seed_b)
    } else {
        (seed_b, seed_a)
    };
    let entry_hi = entries.swap_remove(hi);
    let entry_lo = entries.swap_remove(lo);

    let mut mbr_a = entry_lo.0.clone();
    let mut mbr_b = entry_hi.0.clone();
    let mut group_a = vec![entry_lo];
    let mut group_b = vec![entry_hi];

    while !entries.is_empty() {
        let remaining = entries.len();
        // Force-assign if one group otherwise cannot reach `min`.
        if group_a.len() + remaining == min {
            for e in entries.drain(..) {
                mbr_a.expand(&e.0);
                group_a.push(e);
            }
            break;
        }
        if group_b.len() + remaining == min {
            for e in entries.drain(..) {
                mbr_b.expand(&e.0);
                group_b.push(e);
            }
            break;
        }

        // PickNext: the entry with the greatest preference difference.
        let mut best = 0;
        let mut best_diff = -1.0;
        for (i, e) in entries.iter().enumerate() {
            let d_a = mbr_a.enlargement(&e.0);
            let d_b = mbr_b.enlargement(&e.0);
            let diff = (d_a - d_b).abs();
            if diff > best_diff {
                best_diff = diff;
                best = i;
            }
        }
        let e = entries.swap_remove(best);
        let d_a = mbr_a.enlargement(&e.0);
        let d_b = mbr_b.enlargement(&e.0);
        let to_a = match d_a.partial_cmp(&d_b).expect("finite enlargements") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                // Ties: smaller area, then fewer entries.
                let (area_a, area_b) = (mbr_a.area(), mbr_b.area());
                if area_a != area_b {
                    area_a < area_b
                } else {
                    group_a.len() <= group_b.len()
                }
            }
        };
        if to_a {
            mbr_a.expand(&e.0);
            group_a.push(e);
        } else {
            mbr_b.expand(&e.0);
            group_b.push(e);
        }
    }

    (group_a, group_b)
}

/// PickSeeds: the pair whose combined MBR wastes the most area.
fn pick_seeds(entries: &[SplitEntry]) -> (usize, usize) {
    let mut best = (0, 1);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let mut cover = entries[i].0.clone();
            cover.expand(&entries[j].0);
            let waste = cover.area() - entries[i].0.area() - entries[j].0.area();
            if waste > worst_waste {
                worst_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64, id: u32) -> SplitEntry {
        (Rect::point(&[x, y]), id)
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two tight clusters far apart: the split should separate them.
        let entries = vec![
            pt(0.0, 0.0, 0),
            pt(0.1, 0.1, 1),
            pt(0.2, 0.0, 2),
            pt(10.0, 10.0, 3),
            pt(10.1, 10.1, 4),
            pt(10.2, 10.0, 5),
        ];
        let (a, b) = quadratic_split(entries, 2);
        let ids = |g: &[SplitEntry]| {
            g.iter()
                .map(|e| e.1)
                .collect::<std::collections::BTreeSet<_>>()
        };
        let (ia, ib) = (ids(&a), ids(&b));
        let low: std::collections::BTreeSet<u32> = [0, 1, 2].into();
        let high: std::collections::BTreeSet<u32> = [3, 4, 5].into();
        assert!(
            (ia == low && ib == high) || (ia == high && ib == low),
            "clusters were mixed: {ia:?} vs {ib:?}"
        );
    }

    #[test]
    fn split_respects_min_fill() {
        let entries: Vec<SplitEntry> = (0..9).map(|i| pt(i as f64, 0.0, i)).collect();
        let (a, b) = quadratic_split(entries, 4);
        assert!(a.len() >= 4, "group a has {}", a.len());
        assert!(b.len() >= 4, "group b has {}", b.len());
        assert_eq!(a.len() + b.len(), 9);
    }

    #[test]
    fn split_preserves_all_entries() {
        let entries: Vec<SplitEntry> = (0..17)
            .map(|i| pt((i % 5) as f64, (i / 5) as f64, i))
            .collect();
        let (a, b) = quadratic_split(entries, 3);
        let mut all: Vec<u32> = a.iter().chain(&b).map(|e| e.1).collect();
        all.sort_unstable();
        assert_eq!(all, (0..17).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_few_entries_panics() {
        let entries = vec![pt(0.0, 0.0, 0), pt(1.0, 1.0, 1)];
        let _ = quadratic_split(entries, 2);
    }
}
