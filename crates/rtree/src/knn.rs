//! k-nearest-neighbor queries (best-first, Hjaltason & Samet style).

use crate::node::EntryRef;
use crate::tree::RTree;
use crate::{PointId, PointStore, Rect};
use skyup_geom::OrderedF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

impl RTree {
    /// Returns the `k` points nearest to `query` in Euclidean distance,
    /// closest first, as `(id, distance)` pairs. Fewer than `k` results
    /// when the tree is smaller.
    pub fn nearest_neighbors(
        &self,
        store: &PointStore,
        query: &[f64],
        k: usize,
    ) -> Vec<(PointId, f64)> {
        assert_eq!(query.len(), self.dims(), "query dimensionality mismatch");
        let mut out = Vec::with_capacity(k.min(self.len()));
        if k == 0 || self.is_empty() {
            return out;
        }

        // Min-heap on (distance, entry); tie-break by entry for a total
        // order.
        let mut heap: BinaryHeap<Reverse<(OrderedF64, EntryRef)>> = BinaryHeap::new();
        let root = EntryRef::Node(self.root_id());
        heap.push(Reverse((
            OrderedF64::new(mindist(self.root().mbr(), query)),
            root,
        )));

        while let Some(Reverse((dist, entry))) = heap.pop() {
            match entry {
                EntryRef::Point(p) => {
                    out.push((p, dist.get()));
                    if out.len() == k {
                        break;
                    }
                }
                EntryRef::Node(n) => {
                    let node = self.node(n);
                    if node.is_leaf() {
                        for &p in node.points() {
                            let d = euclidean(store.point(p), query);
                            heap.push(Reverse((OrderedF64::new(d), EntryRef::Point(p))));
                        }
                    } else {
                        for &c in node.children() {
                            let d = mindist(self.node(c).mbr(), query);
                            heap.push(Reverse((OrderedF64::new(d), EntryRef::Node(c))));
                        }
                    }
                }
            }
        }
        out
    }

    /// The single nearest neighbor, if the tree is non-empty.
    pub fn nearest_neighbor(&self, store: &PointStore, query: &[f64]) -> Option<(PointId, f64)> {
        self.nearest_neighbors(store, query, 1).into_iter().next()
    }
}

/// Minimum Euclidean distance from `query` to any point of `rect`.
fn mindist(rect: &Rect, query: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (i, &q) in query.iter().enumerate() {
        let d = if q < rect.lo()[i] {
            rect.lo()[i] - q
        } else if q > rect.hi()[i] {
            q - rect.hi()[i]
        } else {
            0.0
        };
        acc += d * d;
    }
    acc.sqrt()
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeParams;

    fn grid(side: usize) -> (PointStore, RTree) {
        let mut s = PointStore::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f64, j as f64]);
            }
        }
        let t = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
        (s, t)
    }

    fn brute_force(store: &PointStore, q: &[f64], k: usize) -> Vec<(PointId, f64)> {
        let mut all: Vec<(PointId, f64)> =
            store.iter().map(|(id, c)| (id, euclidean(c, q))).collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force() {
        let (s, t) = grid(15);
        for q in [[3.3, 7.8], [0.0, 0.0], [20.0, -5.0], [7.5, 7.5]] {
            let got = t.nearest_neighbors(&s, &q, 7);
            let want = brute_force(&s, &q, 7);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                // Distances must agree exactly; ids may differ on ties.
                assert!((g.1 - w.1).abs() < 1e-12, "query {q:?}");
            }
            // Ascending distances.
            assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn single_nearest() {
        let (s, t) = grid(5);
        let (id, d) = t.nearest_neighbor(&s, &[2.2, 3.1]).unwrap();
        assert_eq!(s.point(id), &[2.0, 3.0]);
        assert!((d - (0.2f64 * 0.2 + 0.1 * 0.1).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_tree() {
        let (s, t) = grid(2);
        let got = t.nearest_neighbors(&s, &[0.0, 0.0], 100);
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn empty_tree_and_zero_k() {
        let s = PointStore::new(2);
        let t = RTree::bulk_load(&s, RTreeParams::default());
        assert!(t.nearest_neighbor(&s, &[0.0, 0.0]).is_none());
        let (s2, t2) = grid(3);
        assert!(t2.nearest_neighbors(&s2, &[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn works_on_insertion_built_tree() {
        let mut s = PointStore::new(2);
        let mut t = crate::RTree::new(2, RTreeParams::with_max_entries(4));
        for i in 0..200 {
            let id = s.push(&[(i * 7 % 50) as f64, (i * 13 % 50) as f64]);
            t.insert(&s, id);
        }
        let got = t.nearest_neighbors(&s, &[25.0, 25.0], 5);
        let want = brute_force(&s, &[25.0, 25.0], 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-12);
        }
    }
}
