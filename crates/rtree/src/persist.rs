//! Compact binary serialization for [`RTree`].
//!
//! Saves the full node arena so a bulk-loaded index can be reloaded
//! without rebuilding. The coordinates stay in the point store (persist
//! it with [`skyup_geom::PointStore::to_bytes`]); loading validates the
//! tree against the store before use.
//!
//! ```text
//! magic "SKUPRTRE" | version u32 | dims u64 | max u64 | min u64
//! | root u32 | num_points u64 | num_nodes u64
//! | node*: level u32, mbr (lo f64*d, hi f64*d) or empty-marker u8,
//!          child_count u64, children u32*, point_count u64, points u32*
//! ```
//!
//! [`snapshot_to_bytes`] wraps a store + tree pair in a single
//! checksummed container so a serving process can warm-start from one
//! file:
//!
//! ```text
//! magic "SKUPSNAP" | version u32 | store_len u64 | store bytes
//! | tree_len u64 | tree bytes | fnv1a u64 (over everything before it)
//! ```

use crate::node::{Node, NodeId};
use crate::tree::{RTree, RTreeParams};
use crate::{PointId, PointStore, Rect};
use skyup_geom::persist::{DecodeError, Reader};

const MAGIC: &[u8; 8] = b"SKUPRTRE";
const VERSION: u32 = 1;

const SNAP_MAGIC: &[u8; 8] = b"SKUPSNAP";
const SNAP_VERSION: u32 = 1;

/// FNV-1a over `buf`: tiny, dependency-free, and plenty to catch the
/// torn writes and bit rot a warm-start file is exposed to. Public so
/// callers can fingerprint serialized snapshots (bench gate, WAL
/// checkpoint container).
pub fn fnv1a(buf: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in buf {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes a point store and the R-tree built over it into a single
/// checksummed snapshot file (`skyup serve --warm-start`).
pub fn snapshot_to_bytes(store: &PointStore, tree: &RTree) -> Vec<u8> {
    let store_bytes = store.to_bytes();
    let tree_bytes = tree.to_bytes();
    let mut out = Vec::with_capacity(8 + 4 + 16 + store_bytes.len() + tree_bytes.len() + 8);
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&(store_bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&store_bytes);
    out.extend_from_slice(&(tree_bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&tree_bytes);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Deserializes a snapshot produced by [`snapshot_to_bytes`],
/// validating the checksum before decoding and the tree against the
/// store after. Every failure mode is a [`DecodeError`], never a panic.
pub fn snapshot_from_bytes(buf: &[u8]) -> Result<(PointStore, RTree), DecodeError> {
    if buf.len() < 8 + 4 + 8 {
        return Err(DecodeError::Truncated);
    }
    let (body, sum_bytes) = buf.split_at(buf.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    // Magic first so a non-snapshot file reports BadMagic, not a
    // meaningless checksum mismatch.
    if &body[..8] != SNAP_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if fnv1a(body) != stored {
        return Err(DecodeError::Corrupt("snapshot checksum mismatch"));
    }
    let mut r = Reader::new(body);
    r.bytes(8)?; // magic, checked above
    let version = r.u32()?;
    if version != SNAP_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let store_len = r.u64()? as usize;
    let store = PointStore::from_bytes(r.bytes(store_len)?)?;
    let tree_len = r.u64()? as usize;
    let tree = RTree::from_bytes(r.bytes(tree_len)?, &store)?;
    r.finish()?;
    Ok((store, tree))
}

/// The deterministic sibling path a [`write_atomic`] call stages its
/// bytes under before the rename. Exposed so crash-simulation tests
/// can plant the debris a killed writer would leave behind.
pub fn atomic_tmp_path(path: &std::path::Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replaces `path` with `bytes`: write to a sibling temp
/// file, fsync it, rename over the target, then fsync the parent
/// directory so the rename itself is durable. A crash at any point
/// leaves either the old file intact or the new file complete — never
/// a truncated or interleaved target.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;

    let tmp = atomic_tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        // An empty parent means a bare relative filename: the cwd.
        let dir = if parent.as_os_str().is_empty() {
            std::path::Path::new(".")
        } else {
            parent
        };
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

impl RTree {
    /// Serializes the tree to a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.dims as u64).to_le_bytes());
        out.extend_from_slice(&(self.params.max_entries as u64).to_le_bytes());
        out.extend_from_slice(&(self.params.min_entries as u64).to_le_bytes());
        out.extend_from_slice(&self.root.0.to_le_bytes());
        out.extend_from_slice(&(self.num_points as u64).to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u64).to_le_bytes());
        for node in &self.nodes {
            out.extend_from_slice(&node.level.to_le_bytes());
            if node.mbr.is_empty_accumulator() {
                out.push(0);
            } else {
                out.push(1);
                for v in node.mbr.lo().iter().chain(node.mbr.hi()) {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            out.extend_from_slice(&(node.children.len() as u64).to_le_bytes());
            for c in &node.children {
                out.extend_from_slice(&c.0.to_le_bytes());
            }
            out.extend_from_slice(&(node.points.len() as u64).to_le_bytes());
            for p in &node.points {
                out.extend_from_slice(&p.0.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes a tree and validates it against `store` (the point
    /// store it was built over). Any structural inconsistency —
    /// including a store that does not match — is rejected.
    pub fn from_bytes(buf: &[u8], store: &PointStore) -> Result<RTree, DecodeError> {
        let mut r = Reader::new(buf);
        if r.bytes(8)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let dims = r.u64()? as usize;
        if dims == 0 || dims != store.dims() {
            return Err(DecodeError::Corrupt("dimensionality mismatch"));
        }
        let max_entries = r.u64()? as usize;
        let min_entries = r.u64()? as usize;
        if min_entries < 2 || min_entries > max_entries / 2 {
            return Err(DecodeError::Corrupt("invalid fanout parameters"));
        }
        let root = NodeId(r.u32()?);
        let num_points = r.u64()? as usize;
        let num_nodes = r.u64()? as usize;

        let mut nodes = Vec::with_capacity(num_nodes.min(1 << 20));
        for _ in 0..num_nodes {
            let level = r.u32()?;
            let has_mbr = r.bytes(1)?[0];
            let mbr = match has_mbr {
                0 => Rect::empty(dims),
                1 => {
                    let mut lo = vec![0.0f64; dims];
                    let mut hi = vec![0.0f64; dims];
                    for v in lo.iter_mut() {
                        *v = r.f64()?;
                    }
                    for v in hi.iter_mut() {
                        *v = r.f64()?;
                    }
                    if lo
                        .iter()
                        .zip(&hi)
                        .any(|(&l, &h)| !l.is_finite() || !h.is_finite() || l > h)
                    {
                        return Err(DecodeError::Corrupt("invalid MBR"));
                    }
                    Rect::new(&lo, &hi)
                }
                _ => return Err(DecodeError::Corrupt("bad MBR marker")),
            };
            let child_count = r.u64()? as usize;
            let mut children = Vec::with_capacity(child_count.min(max_entries + 1));
            for _ in 0..child_count {
                children.push(NodeId(r.u32()?));
            }
            let point_count = r.u64()? as usize;
            let mut points = Vec::with_capacity(point_count.min(max_entries + 1));
            for _ in 0..point_count {
                points.push(PointId(r.u32()?));
            }
            nodes.push(Node {
                mbr,
                level,
                children,
                points,
            });
        }
        r.finish()?;

        if root.index() >= nodes.len() {
            return Err(DecodeError::Corrupt("root out of range"));
        }
        for node in &nodes {
            if node.children.iter().any(|c| c.index() >= nodes.len()) {
                return Err(DecodeError::Corrupt("child id out of range"));
            }
            if node.points.iter().any(|p| p.index() >= store.len()) {
                return Err(DecodeError::Corrupt("point id out of range"));
            }
        }

        let tree = RTree {
            dims,
            params: RTreeParams::new(max_entries, min_entries),
            nodes,
            root,
            num_points,
        };
        tree.validate(store)
            .map_err(|_| DecodeError::Corrupt("tree fails structural validation"))?;
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (PointStore, RTree) {
        let mut s = PointStore::new(2);
        for i in 0..200 {
            s.push(&[(i % 17) as f64, (i % 13) as f64]);
        }
        let t = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
        (s, t)
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let (s, t) = sample();
        let bytes = t.to_bytes();
        let back = RTree::from_bytes(&bytes, &s).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.height(), t.height());
        let range = Rect::new(&[2.0, 3.0], &[9.0, 11.0]);
        let mut a = t.range_query(&s, &range);
        let mut b = back.range_query(&s, &range);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_tree_roundtrip() {
        let s = PointStore::new(3);
        let t = RTree::bulk_load(&s, RTreeParams::default());
        let back = RTree::from_bytes(&t.to_bytes(), &s).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn wrong_store_rejected() {
        let (s, t) = sample();
        let bytes = t.to_bytes();
        // A store with fewer points: ids dangle.
        let mut small = PointStore::new(2);
        small.push(&[0.0, 0.0]);
        assert!(RTree::from_bytes(&bytes, &small).is_err());
        // A store with different contents: MBR validation fails.
        let mut shifted = PointStore::new(2);
        for (_, c) in s.iter() {
            shifted.push(&[c[0] + 1.0, c[1]]);
        }
        assert!(RTree::from_bytes(&bytes, &shifted).is_err());
    }

    #[test]
    fn corruption_rejected() {
        let (s, t) = sample();
        let bytes = t.to_bytes();
        assert_eq!(
            RTree::from_bytes(&bytes[..10], &s).unwrap_err(),
            DecodeError::Truncated
        );
        let mut bad = bytes.clone();
        bad[0] = b'!';
        assert_eq!(
            RTree::from_bytes(&bad, &s).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn snapshot_roundtrip() {
        let (s, t) = sample();
        let bytes = snapshot_to_bytes(&s, &t);
        let (s2, t2) = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(s, s2);
        assert_eq!(t2.len(), t.len());
        t2.validate(&s2).unwrap();
        let range = Rect::new(&[2.0, 3.0], &[9.0, 11.0]);
        let mut a = t.range_query(&s, &range);
        let mut b = t2.range_query(&s2, &range);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_corruption_rejected() {
        let (s, t) = sample();
        let bytes = snapshot_to_bytes(&s, &t);
        // Every single-byte flip in the body trips the checksum.
        for pos in [8, 20, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert_eq!(
                snapshot_from_bytes(&bad).unwrap_err(),
                DecodeError::Corrupt("snapshot checksum mismatch"),
                "flip at {pos}"
            );
        }
        // A flipped checksum itself also fails.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(
            snapshot_from_bytes(&bad).unwrap_err(),
            DecodeError::Corrupt("snapshot checksum mismatch")
        );
        // Truncation and foreign files are rejected up front.
        assert_eq!(
            snapshot_from_bytes(&bytes[..10]).unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            snapshot_from_bytes(&s.to_bytes()).unwrap_err(),
            DecodeError::BadMagic
        );
        // Truncating whole trailing chunks (checksum recomputed) still
        // fails in the structured decode, not with a panic.
        let cut = &bytes[..bytes.len() - 50];
        let mut refit = cut.to_vec();
        let sum = {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in &refit[..] {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        };
        refit.extend_from_slice(&sum.to_le_bytes());
        assert!(snapshot_from_bytes(&refit).is_err());
    }

    #[test]
    fn snapshot_version_checked() {
        let (s, t) = sample();
        let mut bytes = snapshot_to_bytes(&s, &t);
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        // Checksum covers the version, so recompute it for the edit.
        let body_end = bytes.len() - 8;
        let sum = {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in &bytes[..body_end] {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        };
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            snapshot_from_bytes(&bytes).unwrap_err(),
            DecodeError::BadVersion(9)
        );
    }

    #[test]
    fn insertion_tree_roundtrip() {
        let mut s = PointStore::new(2);
        let mut t = RTree::new(2, RTreeParams::with_max_entries(4));
        for i in 0..100 {
            let id = s.push(&[(i * 7 % 31) as f64, (i * 3 % 29) as f64]);
            t.insert(&s, id);
        }
        let back = RTree::from_bytes(&t.to_bytes(), &s).unwrap();
        back.validate(&s).unwrap();
        assert_eq!(back.len(), 100);
    }

    #[test]
    fn write_atomic_replaces_and_survives_torn_staging() {
        let dir = std::env::temp_dir().join(format!("skyup-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("snapshot.bin");

        let (s, t) = sample();
        let old = snapshot_to_bytes(&s, &t);
        write_atomic(&target, &old).unwrap();
        assert!(snapshot_from_bytes(&std::fs::read(&target).unwrap()).is_ok());

        // Simulate a writer killed mid-write: a later save got as far as
        // staging a partial temp file but never reached the rename. The
        // old snapshot must still load, because write_atomic never
        // touches the target until the staged copy is complete + synced.
        let tmp = atomic_tmp_path(&target);
        std::fs::write(&tmp, &old[..old.len() / 2]).unwrap();
        let on_disk = std::fs::read(&target).unwrap();
        assert_eq!(on_disk, old, "torn staging file must not affect the target");
        assert!(snapshot_from_bytes(&on_disk).is_ok());

        // A subsequent save succeeds despite the leftover debris and
        // fully replaces the target.
        let mut s2 = PointStore::new(2);
        s2.push(&[1.0, 2.0]);
        let t2 = RTree::bulk_load(&s2, RTreeParams::default());
        let new = snapshot_to_bytes(&s2, &t2);
        write_atomic(&target, &new).unwrap();
        let (back_s, _) = snapshot_from_bytes(&std::fs::read(&target).unwrap()).unwrap();
        assert_eq!(back_s.len(), 1);
        assert!(!tmp.exists(), "staging file is consumed by the rename");

        std::fs::remove_dir_all(&dir).ok();
    }
}
