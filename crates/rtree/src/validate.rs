//! Structural validation: invariant checks used by tests and debugging.

use crate::node::NodeId;
use crate::tree::RTree;
use crate::{PointStore, Rect};
use std::collections::BTreeSet;
use std::fmt;

/// An invariant violation found by [`RTree::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A node has more than `max_entries` entries.
    Overfull { node: u32, len: usize },
    /// A node MBR does not tightly bound its contents.
    LooseMbr { node: u32 },
    /// A child's level is not its parent's level minus one.
    LevelMismatch { parent: u32, child: u32 },
    /// The set of points reachable from the root differs from the store.
    PointSetMismatch { missing: usize, extra: usize },
    /// The recorded point count disagrees with reality.
    CountMismatch { recorded: usize, actual: usize },
    /// A non-root node is empty.
    EmptyNode { node: u32 },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Overfull { node, len } => {
                write!(f, "node n{node} overfull with {len} entries")
            }
            ValidationError::LooseMbr { node } => {
                write!(f, "node n{node} MBR is not tight")
            }
            ValidationError::LevelMismatch { parent, child } => {
                write!(f, "child n{child} level inconsistent with parent n{parent}")
            }
            ValidationError::PointSetMismatch { missing, extra } => {
                write!(
                    f,
                    "tree points differ from store: {missing} missing, {extra} extra"
                )
            }
            ValidationError::CountMismatch { recorded, actual } => {
                write!(f, "recorded {recorded} points but found {actual}")
            }
            ValidationError::EmptyNode { node } => write!(f, "non-root node n{node} is empty"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl RTree {
    /// Checks every structural invariant of the tree against `store`:
    /// node fanout, MBR tightness, level consistency, and exact point
    /// coverage. Intended for tests; cost is `O(n)`.
    pub fn validate(&self, store: &PointStore) -> Result<(), ValidationError> {
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        self.validate_node(store, self.root, true, &mut seen)?;

        let expected: BTreeSet<u32> = (0..store.len() as u32).collect();
        if seen != expected {
            return Err(ValidationError::PointSetMismatch {
                missing: expected.difference(&seen).count(),
                extra: seen.difference(&expected).count(),
            });
        }
        if seen.len() != self.num_points {
            return Err(ValidationError::CountMismatch {
                recorded: self.num_points,
                actual: seen.len(),
            });
        }
        Ok(())
    }

    fn validate_node(
        &self,
        store: &PointStore,
        id: NodeId,
        is_root: bool,
        seen: &mut BTreeSet<u32>,
    ) -> Result<(), ValidationError> {
        let node = self.node(id);
        if node.len() > self.params.max_entries {
            return Err(ValidationError::Overfull {
                node: id.0,
                len: node.len(),
            });
        }
        if node.is_empty() {
            if is_root {
                return Ok(()); // empty tree
            }
            return Err(ValidationError::EmptyNode { node: id.0 });
        }

        // Recompute the tight MBR and compare.
        let mut tight = Rect::empty(self.dims);
        if node.is_leaf() {
            for &p in node.points() {
                seen.insert(p.0);
                tight.expand_point(store.point(p));
            }
        } else {
            for &c in node.children() {
                let child = self.node(c);
                if child.level + 1 != node.level {
                    return Err(ValidationError::LevelMismatch {
                        parent: id.0,
                        child: c.0,
                    });
                }
                tight.expand(&child.mbr);
                self.validate_node(store, c, false, seen)?;
            }
        }
        if tight != *node.mbr() {
            return Err(ValidationError::LooseMbr { node: id.0 });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeParams;

    #[test]
    fn valid_trees_pass() {
        let mut s = PointStore::new(2);
        for i in 0..100 {
            s.push(&[(i % 10) as f64, (i / 10) as f64]);
        }
        RTree::bulk_load(&s, RTreeParams::with_max_entries(6))
            .validate(&s)
            .unwrap();
        RTree::from_insertion(&s, RTreeParams::with_max_entries(6))
            .validate(&s)
            .unwrap();
    }

    #[test]
    fn detects_missing_points() {
        let mut s = PointStore::new(2);
        for i in 0..10 {
            s.push(&[i as f64, 0.0]);
        }
        let t = RTree::bulk_load(&s, RTreeParams::with_max_entries(4));
        // Grow the store after building: validation must flag the gap.
        s.push(&[99.0, 99.0]);
        match t.validate(&s) {
            Err(ValidationError::PointSetMismatch { missing, extra }) => {
                assert_eq!((missing, extra), (1, 0));
            }
            other => panic!("expected PointSetMismatch, got {other:?}"),
        }
    }

    #[test]
    fn detects_loose_mbr() {
        let mut s = PointStore::new(2);
        for i in 0..8 {
            s.push(&[i as f64, i as f64]);
        }
        let mut t = RTree::bulk_load(&s, RTreeParams::with_max_entries(4));
        // Corrupt a leaf MBR.
        let leaf = {
            let mut id = t.root_id();
            while !t.node(id).is_leaf() {
                id = t.node(id).children()[0];
            }
            id
        };
        t.node_mut(leaf).mbr = Rect::new(&[-100.0, -100.0], &[100.0, 100.0]);
        assert!(matches!(
            t.validate(&s),
            Err(ValidationError::LooseMbr { .. })
        ));
    }

    #[test]
    fn error_display_strings() {
        let e = ValidationError::Overfull { node: 3, len: 99 };
        assert!(e.to_string().contains("n3"));
        let e = ValidationError::CountMismatch {
            recorded: 5,
            actual: 4,
        };
        assert!(e.to_string().contains("recorded 5"));
    }
}
