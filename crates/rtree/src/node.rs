//! Tree nodes and entry references.

use crate::{PointId, Rect};
use std::fmt;

/// Identifier of a node within one [`crate::RTree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index into the node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A reference to an R-tree entry as seen by traversal algorithms: either
/// an internal entry (a child node with an MBR) or a point entry in a
/// leaf.
///
/// The join algorithm's join lists hold values of this type so they can
/// mix levels freely while drilling down.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum EntryRef {
    /// A subtree, identified by its root node.
    Node(NodeId),
    /// A single data point in a leaf.
    Point(PointId),
}

impl EntryRef {
    /// Whether this entry is a point (leaf-level) entry.
    #[inline]
    pub fn is_point(self) -> bool {
        matches!(self, EntryRef::Point(_))
    }
}

/// An R-tree node. `level == 0` means leaf (holds points); otherwise the
/// node holds child nodes of level `level - 1`.
#[derive(Clone, Debug)]
pub struct Node {
    pub(crate) mbr: Rect,
    pub(crate) level: u32,
    pub(crate) children: Vec<NodeId>,
    pub(crate) points: Vec<PointId>,
}

impl Node {
    pub(crate) fn new_leaf(dims: usize) -> Self {
        Node {
            mbr: Rect::empty(dims),
            level: 0,
            children: Vec::new(),
            points: Vec::new(),
        }
    }

    pub(crate) fn new_internal(dims: usize, level: u32) -> Self {
        Node {
            mbr: Rect::empty(dims),
            level,
            children: Vec::new(),
            points: Vec::new(),
        }
    }

    /// The node's minimum bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> &Rect {
        &self.mbr
    }

    /// The node's level; leaves are level 0.
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Whether the node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Child node ids (empty for leaves).
    #[inline]
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Point ids (empty for internal nodes).
    #[inline]
    pub fn points(&self) -> &[PointId] {
        &self.points
    }

    /// Number of entries (children or points).
    #[inline]
    pub fn len(&self) -> usize {
        if self.is_leaf() {
            self.points.len()
        } else {
            self.children.len()
        }
    }

    /// Whether the node holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node's entries as [`EntryRef`]s.
    pub fn entries(&self) -> impl Iterator<Item = EntryRef> + '_ {
        let nodes = self.children.iter().copied().map(EntryRef::Node);
        let points = self.points.iter().copied().map(EntryRef::Point);
        nodes.chain(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_internal_shapes() {
        let mut leaf = Node::new_leaf(2);
        assert!(leaf.is_leaf());
        assert!(leaf.is_empty());
        leaf.points.push(PointId(7));
        assert_eq!(leaf.len(), 1);
        assert_eq!(
            leaf.entries().collect::<Vec<_>>(),
            vec![EntryRef::Point(PointId(7))]
        );

        let mut internal = Node::new_internal(2, 1);
        assert!(!internal.is_leaf());
        internal.children.push(NodeId(3));
        assert_eq!(internal.len(), 1);
        assert_eq!(
            internal.entries().collect::<Vec<_>>(),
            vec![EntryRef::Node(NodeId(3))]
        );
    }

    #[test]
    fn entry_ref_kind() {
        assert!(EntryRef::Point(PointId(0)).is_point());
        assert!(!EntryRef::Node(NodeId(0)).is_point());
    }
}
