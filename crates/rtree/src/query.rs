//! Range queries and traversal helpers.

use crate::node::{EntryRef, NodeId};
use crate::tree::RTree;
use crate::{PointId, PointStore, Rect};
use skyup_obs::{Counter, ExecGuard, Interrupt, NullRecorder, Recorder};

impl RTree {
    /// Returns every indexed point inside `range` (borders included).
    ///
    /// This is the query the basic probing algorithm issues with
    /// `range = ADR(t)` to fetch all of `t`'s potential dominators.
    pub fn range_query(&self, store: &PointStore, range: &Rect) -> Vec<PointId> {
        let mut out = Vec::new();
        self.range_query_into(store, range, &mut out);
        out
    }

    /// [`Self::range_query`] writing into a caller-provided buffer
    /// (cleared first), so hot loops can reuse the allocation.
    pub fn range_query_into(&self, store: &PointStore, range: &Rect, out: &mut Vec<PointId>) {
        self.range_query_into_rec(store, range, out, &mut NullRecorder);
    }

    /// [`Self::range_query_into`] with instrumentation: counts every
    /// node read (`RtreeNodeAccesses`) and every entry examined
    /// (`RtreeEntryAccesses`) during the traversal.
    pub fn range_query_into_rec<R: Recorder + ?Sized>(
        &self,
        store: &PointStore,
        range: &Rect,
        out: &mut Vec<PointId>,
        rec: &mut R,
    ) {
        let unlimited =
            self.range_query_into_lim(store, range, out, rec, &mut ExecGuard::unlimited());
        debug_assert!(unlimited.is_ok(), "unlimited guard cannot interrupt");
    }

    /// [`Self::range_query_into_rec`] under an execution guard: every
    /// node read is charged to `guard` *before* it happens, and the
    /// traversal stops with `Err` the moment the guard trips. `out`
    /// then holds the points collected so far — a valid subset of the
    /// full answer. With [`ExecGuard::unlimited`] the traversal order
    /// and result are identical to the unguarded query.
    pub fn range_query_into_lim<R: Recorder + ?Sized>(
        &self,
        store: &PointStore,
        range: &Rect,
        out: &mut Vec<PointId>,
        rec: &mut R,
        guard: &mut ExecGuard,
    ) -> Result<(), Interrupt> {
        out.clear();
        if self.is_empty() {
            return Ok(());
        }
        let mut stack: Vec<NodeId> = vec![self.root];
        while let Some(id) = stack.pop() {
            guard.visit_node()?;
            let node = self.node(id);
            rec.bump(Counter::RtreeNodeAccesses);
            if !node.mbr.intersects(range) {
                continue;
            }
            if node.is_leaf() {
                rec.incr(Counter::RtreeEntryAccesses, node.points.len() as u64);
                for &p in &node.points {
                    if range.contains_point(store.point(p)) {
                        out.push(p);
                    }
                }
            } else if range.contains_rect(&node.mbr) {
                // Fully covered: take the whole subtree without point tests.
                let before = out.len();
                self.collect_points(EntryRef::Node(id), out);
                rec.incr(Counter::RtreeEntryAccesses, (out.len() - before) as u64);
            } else {
                rec.incr(Counter::RtreeEntryAccesses, node.children.len() as u64);
                stack.extend_from_slice(&node.children);
            }
        }
        Ok(())
    }

    /// Counts the points inside `range` without materializing them.
    pub fn range_count(&self, store: &PointStore, range: &Rect) -> usize {
        if self.is_empty() {
            return 0;
        }
        let mut count = 0;
        let mut stack: Vec<NodeId> = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if !node.mbr.intersects(range) {
                continue;
            }
            if range.contains_rect(&node.mbr) {
                count += self.subtree_point_count(id);
            } else if node.is_leaf() {
                count += node
                    .points
                    .iter()
                    .filter(|&&p| range.contains_point(store.point(p)))
                    .count();
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        count
    }

    fn subtree_point_count(&self, id: NodeId) -> usize {
        let node = self.node(id);
        if node.is_leaf() {
            node.points.len()
        } else {
            node.children
                .iter()
                .map(|&c| self.subtree_point_count(c))
                .sum()
        }
    }

    /// Whether the tree contains a point with exactly these coordinates.
    pub fn contains_coords(&self, store: &PointStore, coords: &[f64]) -> bool {
        let probe = Rect::point(coords);
        !self.range_query(store, &probe).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeParams;

    fn grid(side: usize) -> (PointStore, RTree) {
        let mut s = PointStore::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f64, j as f64]);
            }
        }
        let t = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
        (s, t)
    }

    #[test]
    fn range_query_matches_scan() {
        let (s, t) = grid(12);
        let range = Rect::new(&[2.5, 3.0], &[7.0, 9.5]);
        let mut got = t.range_query(&s, &range);
        got.sort();
        let mut expected: Vec<PointId> = s
            .iter()
            .filter(|(_, c)| range.contains_point(c))
            .map(|(id, _)| id)
            .collect();
        expected.sort();
        assert_eq!(got, expected);
        assert_eq!(t.range_count(&s, &range), expected.len());
    }

    #[test]
    fn covering_range_returns_everything() {
        let (s, t) = grid(9);
        let range = Rect::new(&[-1.0, -1.0], &[100.0, 100.0]);
        assert_eq!(t.range_query(&s, &range).len(), 81);
        assert_eq!(t.range_count(&s, &range), 81);
    }

    #[test]
    fn disjoint_range_returns_nothing() {
        let (s, t) = grid(5);
        let range = Rect::new(&[50.0, 50.0], &[60.0, 60.0]);
        assert!(t.range_query(&s, &range).is_empty());
        assert_eq!(t.range_count(&s, &range), 0);
    }

    #[test]
    fn empty_tree_queries() {
        let s = PointStore::new(2);
        let t = RTree::bulk_load(&s, RTreeParams::default());
        let range = Rect::new(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(t.range_query(&s, &range).is_empty());
        assert_eq!(t.range_count(&s, &range), 0);
    }

    #[test]
    fn contains_coords_exact() {
        let (s, t) = grid(4);
        assert!(t.contains_coords(&s, &[2.0, 3.0]));
        assert!(!t.contains_coords(&s, &[2.0, 3.5]));
    }

    #[test]
    fn guarded_range_query_stops_at_budget() {
        use skyup_obs::ExecutionLimits;

        let (s, t) = grid(12);
        // Partially covering, so the traversal has to descend instead of
        // taking the root subtree wholesale.
        let range = Rect::new(&[2.5, 3.0], &[7.0, 9.5]);

        // Unlimited guard: identical to the plain query.
        let mut out = Vec::new();
        t.range_query_into_lim(
            &s,
            &range,
            &mut out,
            &mut NullRecorder,
            &mut ExecGuard::unlimited(),
        )
        .unwrap();
        assert_eq!(out.len(), t.range_query(&s, &range).len());

        // A one-node budget only reads the root before tripping; the
        // partial output is a subset of the full answer.
        let mut g = ExecutionLimits::none().with_max_node_visits(1).start();
        let mut partial = Vec::new();
        let err = t.range_query_into_lim(&s, &range, &mut partial, &mut NullRecorder, &mut g);
        assert_eq!(err, Err(Interrupt::NodeVisitBudget));
        assert!(partial.len() <= out.len());
        assert!(partial.iter().all(|p| out.contains(p)));
    }

    #[test]
    fn insertion_tree_queries_match_bulk() {
        let (s, bulk) = grid(10);
        let ins = RTree::from_insertion(&s, RTreeParams::with_max_entries(8));
        let range = Rect::new(&[1.5, 0.0], &[6.5, 4.0]);
        let mut a = bulk.range_query(&s, &range);
        let mut b = ins.range_query(&s, &range);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
