//! Tree shape statistics (used by benchmarks and diagnostics).

use crate::node::NodeId;
use crate::tree::RTree;

/// Aggregate shape statistics of an [`RTree`].
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    /// Indexed point count.
    pub num_points: usize,
    /// Total node count.
    pub num_nodes: usize,
    /// Leaf node count.
    pub num_leaves: usize,
    /// Tree height (1 = a single leaf).
    pub height: u32,
    /// Mean leaf fill ratio relative to `max_entries`.
    pub avg_leaf_fill: f64,
    /// Mean internal-node fill ratio relative to `max_entries` (1.0 when
    /// there are no internal nodes).
    pub avg_internal_fill: f64,
    /// Total leaf MBR volume (a proxy for packing quality).
    pub total_leaf_area: f64,
}

impl RTree {
    /// Computes shape statistics by walking the tree.
    pub fn stats(&self) -> TreeStats {
        let mut s = StatsAcc::default();
        self.stats_rec(self.root_id(), &mut s);
        let max = self.params().max_entries as f64;
        TreeStats {
            num_points: self.len(),
            num_nodes: s.nodes,
            num_leaves: s.leaves,
            height: self.height(),
            avg_leaf_fill: if s.leaves == 0 {
                0.0
            } else {
                s.leaf_entries as f64 / (s.leaves as f64 * max)
            },
            avg_internal_fill: if s.internals == 0 {
                1.0
            } else {
                s.internal_entries as f64 / (s.internals as f64 * max)
            },
            total_leaf_area: s.leaf_area,
        }
    }

    fn stats_rec(&self, id: NodeId, s: &mut StatsAcc) {
        let node = self.node(id);
        s.nodes += 1;
        if node.is_leaf() {
            s.leaves += 1;
            s.leaf_entries += node.points().len();
            s.leaf_area += node.mbr().area();
        } else {
            s.internals += 1;
            s.internal_entries += node.children().len();
            for &c in node.children() {
                self.stats_rec(c, s);
            }
        }
    }
}

#[derive(Default)]
struct StatsAcc {
    nodes: usize,
    leaves: usize,
    internals: usize,
    leaf_entries: usize,
    internal_entries: usize,
    leaf_area: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeParams;
    use skyup_geom::PointStore;

    #[test]
    fn stats_consistency() {
        let mut store = PointStore::new(2);
        for i in 0..1000 {
            store.push(&[(i % 37) as f64, (i % 101) as f64]);
        }
        let t = RTree::bulk_load(&store, RTreeParams::with_max_entries(16));
        let s = t.stats();
        assert_eq!(s.num_points, 1000);
        assert_eq!(s.height, t.height());
        assert!(s.num_leaves >= 1000 / 16);
        assert!(s.num_nodes > s.num_leaves);
        assert!(s.avg_leaf_fill > 0.5 && s.avg_leaf_fill <= 1.0);
        assert!(s.avg_internal_fill > 0.0 && s.avg_internal_fill <= 1.0);
    }

    #[test]
    fn str_packs_tighter_than_insertion() {
        let mut store = PointStore::new(2);
        // Pseudo-random scatter.
        let mut x = 1u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(48271) % 0x7fffffff;
            let a = (x % 1000) as f64 / 1000.0;
            x = x.wrapping_mul(48271) % 0x7fffffff;
            let b = (x % 1000) as f64 / 1000.0;
            store.push(&[a, b]);
        }
        let params = RTreeParams::with_max_entries(16);
        let bulk = RTree::bulk_load(&store, params).stats();
        let ins = RTree::from_insertion(&store, params).stats();
        assert!(
            bulk.avg_leaf_fill >= ins.avg_leaf_fill,
            "STR fill {} < insertion fill {}",
            bulk.avg_leaf_fill,
            ins.avg_leaf_fill
        );
    }
}
