//! The R-tree container: arena storage, parameters, and accessors.

use crate::node::{EntryRef, Node, NodeId};
use crate::{PointId, PointStore, Rect};

/// Fanout parameters for an [`RTree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RTreeParams {
    /// Maximum number of entries per node (`M`).
    pub max_entries: usize,
    /// Minimum number of entries per non-root node (`m`), enforced by
    /// splitting; bulk loading packs nodes full so it trivially holds.
    pub min_entries: usize,
}

impl RTreeParams {
    /// Creates parameters after validating `2 <= m <= M/2`.
    ///
    /// # Panics
    /// Panics if the invariant is violated.
    pub fn new(max_entries: usize, min_entries: usize) -> Self {
        assert!(
            min_entries >= 2 && min_entries <= max_entries / 2,
            "RTreeParams require 2 <= m <= M/2, got m={min_entries}, M={max_entries}"
        );
        Self {
            max_entries,
            min_entries,
        }
    }

    /// Parameters with maximum fanout `max_entries` and the customary 40%
    /// minimum fill.
    pub fn with_max_entries(max_entries: usize) -> Self {
        Self::new(max_entries, (max_entries * 2 / 5).max(2))
    }
}

impl Default for RTreeParams {
    /// `M = 64`, `m = 25` — roughly a 4 KiB page of 5-dimensional
    /// entries, the regime the paper's experiments assume.
    fn default() -> Self {
        Self::with_max_entries(64)
    }
}

/// An R-tree over the points of one [`PointStore`].
///
/// The tree holds [`PointId`]s only; coordinate lookups go through the
/// store reference passed to each operation. See the crate docs for why
/// the node structure is public.
#[derive(Clone, Debug)]
pub struct RTree {
    pub(crate) dims: usize,
    pub(crate) params: RTreeParams,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    pub(crate) num_points: usize,
}

impl RTree {
    /// Creates an empty tree (a single empty leaf root) for
    /// `dims`-dimensional points.
    pub fn new(dims: usize, params: RTreeParams) -> Self {
        assert!(dims > 0, "R-tree needs at least one dimension");
        RTree {
            dims,
            params,
            nodes: vec![Node::new_leaf(dims)],
            root: NodeId(0),
            num_points: 0,
        }
    }

    /// Dimensionality of the indexed points.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The tree's fanout parameters.
    #[inline]
    pub fn params(&self) -> RTreeParams {
        self.params
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_points
    }

    /// Whether the tree indexes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_points == 0
    }

    /// The root node id.
    #[inline]
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> &Node {
        self.node(self.root)
    }

    /// Height of the tree: 1 for a single leaf, etc.
    pub fn height(&self) -> u32 {
        self.root().level + 1
    }

    /// Borrows node `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a node of this tree.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    pub(crate) fn alloc(&mut self, node: Node) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node arena overflow"));
        self.nodes.push(node);
        id
    }

    /// Minimum corner of an entry: the node MBR's `lo`, or the point's
    /// coordinates for a point entry.
    pub fn entry_lo<'a>(&'a self, store: &'a PointStore, e: EntryRef) -> &'a [f64] {
        match e {
            EntryRef::Node(n) => self.node(n).mbr.lo(),
            EntryRef::Point(p) => store.point(p),
        }
    }

    /// Maximum corner of an entry (equals [`Self::entry_lo`] for points).
    pub fn entry_hi<'a>(&'a self, store: &'a PointStore, e: EntryRef) -> &'a [f64] {
        match e {
            EntryRef::Node(n) => self.node(n).mbr.hi(),
            EntryRef::Point(p) => store.point(p),
        }
    }

    /// The entry's MBR as an owned rectangle (degenerate for points).
    pub fn entry_rect(&self, store: &PointStore, e: EntryRef) -> Rect {
        match e {
            EntryRef::Node(n) => self.node(n).mbr.clone(),
            EntryRef::Point(p) => Rect::point(store.point(p)),
        }
    }

    /// Collects every point id reachable below `entry` into `out`,
    /// preserving encounter order. Used by the join algorithm when it
    /// resolves a leaf product against the subtrees left in its join
    /// list.
    pub fn collect_points(&self, entry: EntryRef, out: &mut Vec<PointId>) {
        match entry {
            EntryRef::Point(p) => out.push(p),
            EntryRef::Node(n) => {
                let node = self.node(n);
                if node.is_leaf() {
                    out.extend_from_slice(&node.points);
                } else {
                    for &c in &node.children {
                        self.collect_points(EntryRef::Node(c), out);
                    }
                }
            }
        }
    }

    /// Iterates over all point ids in the tree (depth-first order).
    pub fn iter_points(&self) -> Vec<PointId> {
        let mut out = Vec::with_capacity(self.num_points);
        if !self.root().is_empty() {
            self.collect_points(EntryRef::Node(self.root), &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        let p = RTreeParams::default();
        assert_eq!(p.max_entries, 64);
        assert_eq!(p.min_entries, 25);
        let q = RTreeParams::with_max_entries(8);
        assert_eq!(q.min_entries, 3);
    }

    #[test]
    #[should_panic(expected = "RTreeParams")]
    fn bad_params_panic() {
        let _ = RTreeParams::new(4, 3);
    }

    #[test]
    fn empty_tree_shape() {
        let t = RTree::new(3, RTreeParams::default());
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.root().is_leaf());
        assert_eq!(t.iter_points(), vec![]);
    }

    #[test]
    fn entry_accessors() {
        let mut store = PointStore::new(2);
        let p = store.push(&[1.0, 2.0]);
        let t = RTree::bulk_load(&store, RTreeParams::default());
        assert_eq!(t.entry_lo(&store, EntryRef::Point(p)), &[1.0, 2.0]);
        assert_eq!(t.entry_hi(&store, EntryRef::Point(p)), &[1.0, 2.0]);
        let r = t.entry_rect(&store, EntryRef::Node(t.root_id()));
        assert_eq!(r.lo(), &[1.0, 2.0]);
    }
}
