//! A from-scratch R-tree over [`skyup_geom::PointStore`] data.
//!
//! The product-upgrading algorithms of the paper (Lu & Jensen, ICDE 2012)
//! need more from their index than point queries: the improved probing
//! algorithm runs a best-first (BBS-style) traversal over internal nodes,
//! and the join algorithm walks *two* trees simultaneously, inspecting
//! node MBRs, expanding chosen entries, and maintaining join lists of
//! entries from either level. This crate therefore exposes the tree
//! structure itself — nodes, levels, MBRs, and entry references — rather
//! than hiding it behind query methods.
//!
//! Construction:
//! * [`RTree::bulk_load`] — Sort-Tile-Recursive (STR) packing, the
//!   default for the experiments (both `P` and `T` are loaded up front);
//! * [`RTree::insert`] — classic Guttman insertion with quadratic node
//!   splitting, for incremental maintenance and for the ablation study
//!   comparing packed vs. incrementally built trees.
//!
//! The tree stores [`PointId`]s and borrows coordinates from the
//! [`PointStore`] passed to each operation; the caller must always pass
//! the store the tree was built over (checked via dimensionality and
//! bounds assertions).

pub mod bulk;
pub mod delete;
pub mod insert;
pub mod knn;
pub mod node;
pub mod persist;
pub mod query;
pub mod split;
pub mod stats;
pub mod tree;
pub mod validate;

pub use node::{EntryRef, Node, NodeId};
pub use stats::TreeStats;
pub use tree::{RTree, RTreeParams};
pub use validate::ValidationError;

pub(crate) use skyup_geom::{PointId, PointStore, Rect};
