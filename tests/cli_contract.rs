//! Exit-code contract of the `skyup` binary, exercised end to end:
//! `0` = exact answer, `2` = partial answer (a limit fired), `1` =
//! error. Spawns the real binary via `CARGO_BIN_EXE_skyup`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_skyup"))
}

/// Writes a small competitor/product fixture pair under a per-test
/// directory (tests in this file run concurrently).
fn fixture(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("skyup-cli-contract-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let mut competitors = String::new();
    // A 6x6 grid of competitors in (0, 1.2)^2.
    for i in 0..6 {
        for j in 0..6 {
            competitors.push_str(&format!(
                "{},{}\n",
                0.2 * (i + 1) as f64,
                0.2 * (j + 1) as f64
            ));
        }
    }
    let products = "0.9,0.8\n1.1,1.0\n0.7,1.1\n0.95,0.95\n1.0,0.6\n";
    let comp = dir.join("competitors.csv");
    let prod = dir.join("products.csv");
    std::fs::write(&comp, competitors).unwrap();
    std::fs::write(&prod, products).unwrap();
    (comp, prod)
}

fn run(comp: &PathBuf, prod: &PathBuf, extra: &[&str]) -> Output {
    bin()
        .arg("--competitors")
        .arg(comp)
        .arg("--products")
        .arg(prod)
        .args(extra)
        .output()
        .expect("failed to spawn the skyup binary")
}

#[test]
fn exact_answer_exits_zero() {
    let (comp, prod) = fixture("exact");
    for algorithm in ["basic", "probing", "join"] {
        let out = run(&comp, &prod, &["-k", "3", "--algorithm", algorithm]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(out.status.code(), Some(0), "{algorithm}: {stdout}");
        assert!(stdout.contains("k = 3"), "{algorithm}: {stdout}");
        assert!(stdout.contains("#1 product"), "{algorithm}: {stdout}");
        // Unlimited runs keep the historical report format verbatim.
        assert!(!stdout.contains("completion:"), "{algorithm}: {stdout}");
    }
}

#[test]
fn help_exits_zero() {
    let out = bin().arg("--help").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: skyup"));
}

#[test]
fn guarded_exact_run_still_exits_zero() {
    let (comp, prod) = fixture("guarded-exact");
    let out = run(
        &comp,
        &prod,
        &[
            "-k",
            "2",
            "--algorithm",
            "probing",
            "--max-node-visits",
            "1000000",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("completion: exact"), "{stdout}");
}

#[test]
fn exhausted_budget_exits_two_with_partial_answer() {
    let (comp, prod) = fixture("partial");
    for algorithm in ["basic", "probing", "join"] {
        let out = run(
            &comp,
            &prod,
            &[
                "-k",
                "3",
                "--algorithm",
                algorithm,
                "--max-node-visits",
                "1",
            ],
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(out.status.code(), Some(2), "{algorithm}: {stdout}");
        assert!(
            stdout.contains("completion: partial (node visit budget exhausted)"),
            "{algorithm}: {stdout}"
        );
    }
}

#[test]
fn bad_arguments_exit_one() {
    let out = bin().arg("--no-such-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(!out.stderr.is_empty());

    let (comp, prod) = fixture("bad-args");
    let out = run(&comp, &prod, &["--max-node-visits", "0"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--max-node-visits"));
}

#[test]
fn unreadable_input_exits_one() {
    let missing = std::env::temp_dir().join("skyup-cli-contract-nope/does-not-exist.csv");
    let (_, prod) = fixture("missing");
    let out = run(&missing, &prod, &[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).starts_with("error:"));
}

#[test]
fn malformed_data_exits_one_with_line_context() {
    let dir = std::env::temp_dir().join("skyup-cli-contract-malformed");
    std::fs::create_dir_all(&dir).unwrap();
    let comp = dir.join("competitors.csv");
    let prod = dir.join("products.csv");
    std::fs::write(&comp, "0.5,0.5\n0.4,inf\n").unwrap();
    std::fs::write(&prod, "0.9,0.8\n").unwrap();
    let out = run(&comp, &prod, &[]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
}

/// `query --connect` against a dead port retries connection-refused
/// with backoff — exactly 3 attempts, a stderr line per retry — and
/// exits 1 when the server never appears. (A live-server recovery of
/// the same path is exercised by the crash harness.)
#[test]
fn query_connect_refused_retries_then_exits_one() {
    // Bind-then-drop reserves a port that nothing is listening on.
    let port = {
        let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        sock.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let start = std::time::Instant::now();
    let out = bin()
        .args(["query", "--connect", &addr, "--health"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.matches("retrying in").count(),
        2,
        "3 attempts means 2 retry notices: {stderr}"
    );
    assert!(
        stderr.contains("connection refused after 3 attempts"),
        "{stderr}"
    );
    // Two backoff sleeps (base 50ms then 100ms) must actually happen.
    assert!(
        start.elapsed() >= std::time::Duration::from_millis(150),
        "backoff was skipped: {:?}",
        start.elapsed()
    );
}

// ---------------------------------------------------------------------
// `skyup ingest` error contract: every rejected file names its line in
// a structured `SkyupError::DataLoad`, rendered on stderr as
// `error: <source>: line <n>: <what>`, with exit code 1.
// ---------------------------------------------------------------------

/// Runs `skyup ingest` over a scratch file with the given contents.
fn run_ingest(tag: &str, file_name: &str, contents: &str, extra: &[&str]) -> Output {
    let dir = std::env::temp_dir().join(format!("skyup-cli-contract-ingest-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(file_name);
    std::fs::write(&path, contents).unwrap();
    bin()
        .arg("ingest")
        .arg(&path)
        .args(extra)
        .output()
        .expect("failed to spawn the skyup binary")
}

#[test]
fn ingest_malformed_cell_names_its_line() {
    let out = run_ingest(
        "malformed",
        "bad.csv",
        "0.5,0.5\n0.4,potato\n0.3,0.3\n",
        &[],
    );
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error:"), "{stderr}");
    assert!(stderr.contains("line 2"), "{stderr}");
    assert!(stderr.contains("potato"), "{stderr}");
}

#[test]
fn ingest_non_finite_value_names_its_line() {
    let out = run_ingest("nonfinite", "inf.csv", "0.5,0.5\n0.4,0.4\n-inf,0.3\n", &[]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 3"), "{stderr}");
    assert!(stderr.contains("non-finite"), "{stderr}");
}

#[test]
fn ingest_ragged_row_names_its_line() {
    let out = run_ingest("ragged", "ragged.csv", "0.5,0.5\n0.4,0.4,0.9\n", &[]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
    assert!(stderr.contains("3 columns"), "{stderr}");
}

#[test]
fn ingest_empty_file_is_a_whole_file_error() {
    let out = run_ingest("empty", "empty.csv", "", &[]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    // line == 0 renders without a line number: the file as a whole.
    assert!(stderr.contains("empty file"), "{stderr}");
    assert!(!stderr.contains("line 0"), "{stderr}");
}

#[test]
fn ingest_profile_succeeds_on_clean_data() {
    let out = run_ingest(
        "profile",
        "clean.csv",
        "price,rating\n10,4\n20,5\n15,3\n",
        &["--profile", "--negate", "1"],
    );
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ingested 3 rows x 2 columns"), "{stdout}");
    assert!(stdout.contains("max (negated)"), "{stdout}");
}
