//! The paper's motivating example (Section I-B, Tables I and II): the
//! dominator structure stated in the text, verified end to end.

use skyup::core::cost::SumCost;
use skyup::core::{improved_probing_topk, UpgradeConfig};
use skyup::geom::dominance::dominates;
use skyup::geom::{PointId, PointStore};
use skyup::rtree::{RTree, RTreeParams};
use skyup::skyline::{skyline_bnl, skyline_sfs};

fn phone(weight: f64, standby: f64, megapixels: f64) -> Vec<f64> {
    // Negate larger-is-better attributes (footnote 1).
    vec![weight, -standby, -megapixels]
}

fn table_one() -> PointStore {
    PointStore::from_rows(
        3,
        vec![
            phone(140.0, 200.0, 2.0),
            phone(180.0, 150.0, 3.0),
            phone(100.0, 160.0, 3.0),
            phone(180.0, 180.0, 3.0),
            phone(120.0, 180.0, 4.0),
            phone(150.0, 150.0, 3.0),
        ],
    )
}

fn table_two() -> PointStore {
    PointStore::from_rows(
        3,
        vec![
            phone(150.0, 120.0, 2.0), // A
            phone(180.0, 130.0, 1.0), // B
            phone(180.0, 120.0, 3.0), // C
            phone(220.0, 180.0, 2.0), // D
        ],
    )
}

#[test]
fn phones_1_3_5_form_the_skyline() {
    let p = table_one();
    let ids: Vec<PointId> = p.ids().collect();
    let mut sky = skyline_sfs(&p, &ids);
    sky.sort();
    assert_eq!(sky, vec![PointId(0), PointId(2), PointId(4)]);
    let mut sky_bnl = skyline_bnl(&p, &ids);
    sky_bnl.sort();
    assert_eq!(sky, sky_bnl);
}

#[test]
fn dominator_structure_matches_the_paper_text() {
    // "phone A is dominated by phones 1, 3, 5, and 6, phone B by all
    // phones in P, phone C by all phones save phone 1, and phone D by
    // phones 1, 4, and 5."
    let p = table_one();
    let t = table_two();
    let expected: [&[usize]; 4] = [
        &[1, 3, 5, 6],
        &[1, 2, 3, 4, 5, 6],
        &[2, 3, 4, 5, 6],
        &[1, 4, 5],
    ];
    for (tid, tp) in t.iter() {
        let dominators: Vec<usize> = p
            .iter()
            .filter(|(_, pp)| dominates(pp, tp))
            .map(|(id, _)| id.index() + 1)
            .collect();
        assert_eq!(dominators, expected[tid.index()], "phone {:?}", tid);
    }
}

#[test]
fn every_table_two_phone_can_be_upgraded() {
    let p = table_one();
    let t = table_two();
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    // Reciprocal costs need positive inputs; shift epsilon past the
    // most-negated value (-200 standby hours).
    let cost_fn = SumCost::reciprocal(3, 250.0);
    let out = improved_probing_topk(&p, &rp, &t, 4, &cost_fn, &UpgradeConfig::with_epsilon(0.5));
    assert_eq!(out.len(), 4);
    for r in &out {
        assert!(
            r.cost > 0.0,
            "every T phone is dominated, so upgrading costs"
        );
        let clear = p.iter().all(|(_, pp)| !dominates(pp, &r.upgraded));
        assert!(clear, "upgraded phone {:?} still dominated", r.product);
        // Upgrades only improve attributes.
        assert!(r.upgraded.iter().zip(&r.original).all(|(u, o)| u <= o));
    }
    assert!(out.windows(2).all(|w| w[0].cost <= w[1].cost));
}
