//! Cross-algorithm oracles: the three top-k approaches must agree on
//! upgrade costs across distributions, dimensionalities, and domain
//! layouts (using the admissible bound mode where exact ordering is
//! required; see DESIGN.md §3).

use skyup::core::cost::{AttributeCost, LinearCost, SumCost};
use skyup::core::join::{BoundMode, JoinUpgrader, LowerBound};
use skyup::core::probing::improved_probing_topk_pruned_rec;
use skyup::core::{
    basic_probing_topk, basic_probing_topk_rec, improved_probing_topk,
    improved_probing_topk_parallel_rec, improved_probing_topk_rec,
    improved_probing_topk_scheduled_rec, single_set_topk, ProbeStrategy, UpgradeConfig,
};
use skyup::data::synthetic::{generate, Distribution, SyntheticConfig};
use skyup::geom::PointStore;
use skyup::obs::{Counter, QueryMetrics};
use skyup::rtree::{RTree, RTreeParams};

fn costs(rs: &[skyup::core::UpgradeResult]) -> Vec<f64> {
    rs.iter().map(|r| r.cost).collect()
}

fn assert_costs_eq(a: &[f64], b: &[f64], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() < 1e-9, "{label}: rank {i}: {x} vs {y}");
    }
}

fn run_case(dist: Distribution, dims: usize, p_lo: f64, p_hi: f64, t_lo: f64, t_hi: f64) {
    let p = generate(
        800,
        &SyntheticConfig {
            dims,
            distribution: dist,
            lo: p_lo,
            hi: p_hi,
            seed: 100 + dims as u64,
        },
    );
    let t = generate(
        150,
        &SyntheticConfig {
            dims,
            distribution: dist,
            lo: t_lo,
            hi: t_hi,
            seed: 200 + dims as u64,
        },
    );
    let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(16));
    let rt = RTree::bulk_load(&t, RTreeParams::with_max_entries(16));
    let cost_fn = SumCost::reciprocal(dims, 1e-2);
    let cfg = UpgradeConfig::default();
    let k = 12;

    let basic = basic_probing_topk(&p, &rp, &t, k, &cost_fn, &cfg);
    let improved = improved_probing_topk(&p, &rp, &t, k, &cost_fn, &cfg);
    assert_costs_eq(
        &costs(&basic),
        &costs(&improved),
        &format!("{dist:?} d={dims} basic vs improved"),
    );
    // Identical tie-breaking: same products chosen, not just same costs.
    let ids_basic: Vec<_> = basic.iter().map(|r| r.product).collect();
    let ids_improved: Vec<_> = improved.iter().map(|r| r.product).collect();
    assert_eq!(ids_basic, ids_improved);

    for bound in LowerBound::ALL {
        let join: Vec<_> = JoinUpgrader::new(&p, &rp, &t, &rt, &cost_fn, cfg, bound)
            .with_bound_mode(BoundMode::Admissible)
            .take(k)
            .collect();
        assert_costs_eq(
            &costs(&join),
            &costs(&improved),
            &format!("{dist:?} d={dims} join-{bound:?} vs probing"),
        );
    }
}

#[test]
fn agreement_on_paper_domains() {
    for dist in [
        Distribution::Independent,
        Distribution::AntiCorrelated,
        Distribution::Correlated,
    ] {
        for dims in [2, 4] {
            run_case(dist, dims, 0.0, 1.0, 1.0001, 2.0);
        }
    }
}

#[test]
fn agreement_on_interleaved_domains() {
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        for dims in [2, 3] {
            run_case(dist, dims, 0.0, 1.0, 0.3, 1.3);
        }
    }
}

/// The counters must tell the same story as the paper's Figure 2 and
/// Section V: improved probing reads strictly fewer R-tree entries than
/// basic probing (that is the whole point of `getDominatingSky`), while
/// the four probing variants return identical top-k answers and agree
/// on the workload-shape counters.
#[test]
fn counter_consistency_across_algorithms() {
    let p = generate(
        1200,
        &SyntheticConfig::unit(3, Distribution::AntiCorrelated, 31),
    );
    let t = generate(
        180,
        &SyntheticConfig {
            dims: 3,
            distribution: Distribution::Independent,
            lo: 0.4,
            hi: 1.4,
            seed: 32,
        },
    );
    let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(16));
    let cost_fn = SumCost::reciprocal(3, 1e-2);
    let cfg = UpgradeConfig::default();
    let k = 10;

    let mut mb = QueryMetrics::new();
    let basic = basic_probing_topk_rec(&p, &rp, &t, k, &cost_fn, &cfg, &mut mb);
    let mut mi = QueryMetrics::new();
    let improved = improved_probing_topk_rec(&p, &rp, &t, k, &cost_fn, &cfg, &mut mi);
    let mut mp = QueryMetrics::new();
    let parallel = improved_probing_topk_parallel_rec(&p, &rp, &t, k, &cost_fn, &cfg, 4, &mut mp);
    let mut mq = QueryMetrics::new();
    let (pruned, _) = improved_probing_topk_pruned_rec(&p, &rp, &t, k, &cost_fn, &cfg, &mut mq);

    // All four algorithms produce the identical top-k plan.
    for (label, other) in [
        ("improved", &improved),
        ("parallel", &parallel),
        ("pruned", &pruned),
    ] {
        assert_eq!(basic.len(), other.len(), "{label}");
        for (a, b) in basic.iter().zip(other.iter()) {
            assert_eq!(a.product, b.product, "{label}");
            assert!((a.cost - b.cost).abs() < 1e-9, "{label}");
            assert_eq!(a.upgraded, b.upgraded, "{label}");
        }
    }

    // getDominatingSky's node pruning must beat the ADR range scan.
    assert!(
        mi.get(Counter::RtreeEntryAccesses) < mb.get(Counter::RtreeEntryAccesses),
        "improved probing should access strictly fewer R-tree entries: {} vs {}",
        mi.get(Counter::RtreeEntryAccesses),
        mb.get(Counter::RtreeEntryAccesses),
    );
    assert!(mi.get(Counter::RtreeNodeAccesses) < mb.get(Counter::RtreeNodeAccesses));
    // (Dominance tests are NOT asserted: the constrained BBS re-checks
    // heap entries against the growing skyline, so it can run more
    // point-level tests even while touching far fewer R-tree entries.)

    // Workload-shape counters agree everywhere they are comparable.
    for m in [&mb, &mi, &mp] {
        assert_eq!(m.get(Counter::ProductsEvaluated), t.len() as u64);
        assert_eq!(m.get(Counter::ResultsEmitted), k as u64);
    }
    // The same per-product work happens under the parallel split: its
    // counters are deterministic and equal the sequential improved run.
    for c in [
        Counter::DominanceTests,
        Counter::RtreeNodeAccesses,
        Counter::RtreeEntryAccesses,
        Counter::SkylinePointsRetained,
        Counter::HeapPushes,
        Counter::HeapPops,
    ] {
        assert_eq!(mp.get(c), mi.get(c), "parallel vs improved {}", c.name());
    }
    // Both skyline strategies retain the same dominator skylines.
    assert_eq!(
        mb.get(Counter::SkylinePointsRetained),
        mi.get(Counter::SkylinePointsRetained)
    );
    // The screen only ever skips products, never evaluates more.
    assert!(mq.get(Counter::ProductsEvaluated) <= t.len() as u64);
    assert_eq!(
        mq.get(Counter::ProductsEvaluated) + mq.get(Counter::ThresholdPrunes),
        t.len() as u64
    );
}

/// The probe scheduler's counter contract: work stealing merges to
/// fully deterministic metrics at every thread count (each product is
/// claimed and evaluated exactly once), and the bound-sorted pruning
/// path keeps the exact accounting `ProductsEvaluated + ThresholdPrunes
/// == |T|` while returning the bit-identical sequential answer.
#[test]
fn scheduled_probing_counter_contract() {
    let p = generate(
        800,
        &SyntheticConfig::unit(3, Distribution::Independent, 41),
    );
    let t = generate(
        150,
        &SyntheticConfig {
            dims: 3,
            distribution: Distribution::Independent,
            lo: 0.3,
            hi: 1.3,
            seed: 42,
        },
    );
    let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(16));
    // Linear costs keep the admissible list bounds informative, so the
    // shared-threshold screen actually fires on this interleaved layout.
    let cost_fn = SumCost::new(
        (0..3)
            .map(|_| Box::new(LinearCost::new(2.0, 1.0)) as Box<dyn AttributeCost>)
            .collect(),
    );
    let cfg = UpgradeConfig::default();
    let k = 8;
    let seq = improved_probing_topk(&p, &rp, &t, k, &cost_fn, &cfg);

    let assert_bit_identical = |out: &[skyup::core::UpgradeResult], label: &str| {
        assert_eq!(seq.len(), out.len(), "{label}");
        for (a, b) in seq.iter().zip(out) {
            assert_eq!(a.product, b.product, "{label}");
            assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{label}");
            assert_eq!(a.upgraded, b.upgraded, "{label}");
        }
    };

    // Work stealing: same counters no matter how the claims interleave.
    let mut baseline: Option<Vec<u64>> = None;
    for threads in [1, 2, 4, 8] {
        let mut m = QueryMetrics::new();
        let (out, stats) = improved_probing_topk_scheduled_rec(
            &p,
            &rp,
            &t,
            k,
            &cost_fn,
            &cfg,
            threads,
            ProbeStrategy::WorkStealing,
            &mut m,
        );
        assert_bit_identical(&out, &format!("stealing threads={threads}"));
        assert_eq!(m.get(Counter::StealEvents), t.len() as u64);
        assert_eq!(m.get(Counter::ProductsEvaluated), t.len() as u64);
        assert_eq!(stats.pruned, 0);
        let snap: Vec<u64> = Counter::ALL.iter().map(|&c| m.get(c)).collect();
        match &baseline {
            None => baseline = Some(snap),
            Some(b) => assert_eq!(b, &snap, "stealing counters differ at threads={threads}"),
        }
    }

    // Bound-sorted pruning: exact results plus exact accounting. Which
    // products get pruned is timing-dependent, but every product is
    // either evaluated or pruned — never both, never neither.
    for threads in [1, 2, 4, 8] {
        let mut m = QueryMetrics::new();
        let (out, stats) = improved_probing_topk_scheduled_rec(
            &p,
            &rp,
            &t,
            k,
            &cost_fn,
            &cfg,
            threads,
            ProbeStrategy::BoundSorted,
            &mut m,
        );
        assert_bit_identical(&out, &format!("bound-sorted threads={threads}"));
        assert_eq!(
            m.get(Counter::ProductsEvaluated) + m.get(Counter::ThresholdPrunes),
            t.len() as u64,
            "threads={threads}"
        );
        assert_eq!(m.get(Counter::ProductsEvaluated), stats.evaluated);
        assert_eq!(m.get(Counter::ThresholdPrunes), stats.pruned);
        assert_eq!(m.get(Counter::LowerBoundEvals), t.len() as u64);
        if threads == 1 {
            assert!(
                stats.pruned > 0,
                "the screen must fire on the interleaved workload: {stats:?}"
            );
        }
    }
}

/// Zone-map accounting composes with batching and work stealing: every
/// item answered by a full skyline scan covers the shared skyline's
/// block count exactly once — as scanned plus skipped, never lost or
/// double-counted — at every thread count. Memo-hit items run no kernel
/// scan, so `KernelBlockScans + KernelBlocksSkipped` is an exact
/// function of the full-scan count even though *which* items the memo
/// answers is timing-dependent above one thread.
#[test]
fn batch_kernel_block_conservation() {
    use skyup::core::{run_probe_batch, BatchItem};
    use skyup::geom::DOM_BLOCK;
    use skyup::obs::ExecutionLimits;
    use skyup::skyline::skyline_bnl;

    let p = generate(
        900,
        &SyntheticConfig::unit(3, Distribution::AntiCorrelated, 51),
    );
    let t = generate(
        120,
        &SyntheticConfig {
            dims: 3,
            distribution: Distribution::Independent,
            lo: 0.4,
            hi: 1.4,
            seed: 52,
        },
    );
    let ids: Vec<_> = p.ids().collect();
    let mut sky = skyline_bnl(&p, &ids);
    sky.sort(); // run_probe_batch requires an id-sorted skyline
    let sky_blocks = sky.len().div_ceil(DOM_BLOCK) as u64;
    let cost_fn = SumCost::reciprocal(3, 1e-2);
    let cfg = UpgradeConfig::default();
    let items: Vec<BatchItem> = t
        .iter()
        .map(|(id, c)| BatchItem {
            request: 0,
            index: id.0,
            coords: c,
        })
        .collect();

    for threads in [1, 2, 4] {
        let guards = vec![ExecutionLimits::default().start()];
        let mut m = QueryMetrics::new();
        let out = run_probe_batch(
            &p,
            &sky,
            &items,
            std::slice::from_ref(&cost_fn),
            &guards,
            &cfg,
            threads,
            &mut m,
        )
        .expect("batch executes");
        assert!(out.outcomes.iter().all(|o| o.is_some()), "no cuts expected");
        let full_scans = items.len() as u64 - out.memo_hits;
        assert_eq!(
            m.get(Counter::KernelBlockScans) + m.get(Counter::KernelBlocksSkipped),
            full_scans * sky_blocks,
            "threads={threads}: kernel blocks lost or double-counted"
        );
        // Every full scan is a collect pass over the gathered skyline,
        // so the points the kernel compared can never exceed one
        // skyline sweep per scan.
        assert!(m.get(Counter::DominanceTests) <= items.len() as u64 * sky.len() as u64);
    }
}

#[test]
fn single_set_agrees_with_probing_against_self() {
    // Splitting a catalog into {t} vs rest, probing each singleton,
    // must equal the single-set sweep.
    let store = generate(
        300,
        &SyntheticConfig::unit(3, Distribution::Independent, 77),
    );
    let tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(16));
    let cost_fn = SumCost::reciprocal(3, 1e-2);
    let cfg = UpgradeConfig::default();

    let sweep = single_set_topk(&store, &tree, None, 300, &cost_fn, &cfg);
    assert_eq!(sweep.len(), 300);

    // Reference: per-product dominator skyline via scan + Algorithm 1.
    use skyup::core::upgrade_single;
    use skyup::geom::dominance::dominates;
    use skyup::skyline::skyline_naive;
    for r in sweep.iter().take(40) {
        let t = store.point(r.product);
        let dominators: Vec<_> = store
            .iter()
            .filter(|(id, c)| *id != r.product && dominates(c, t))
            .map(|(id, _)| id)
            .collect();
        let sky = skyline_naive(&store, &dominators);
        let (cost, _) = upgrade_single(&store, &sky, t, &cost_fn, &cfg);
        assert!((cost - r.cost).abs() < 1e-9, "product {:?}", r.product);
    }
}

#[test]
fn extreme_k_values() {
    let p = generate(400, &SyntheticConfig::unit(2, Distribution::Independent, 5));
    let t = generate(
        50,
        &SyntheticConfig {
            dims: 2,
            distribution: Distribution::Independent,
            lo: 1.0,
            hi: 2.0,
            seed: 6,
        },
    );
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let rt = RTree::bulk_load(&t, RTreeParams::default());
    let cost_fn = SumCost::reciprocal(2, 1e-2);
    let cfg = UpgradeConfig::default();

    // k = 1.
    let one = improved_probing_topk(&p, &rp, &t, 1, &cost_fn, &cfg);
    assert_eq!(one.len(), 1);
    // k > |T|: everything returned, still sorted.
    let all = improved_probing_topk(&p, &rp, &t, 1000, &cost_fn, &cfg);
    assert_eq!(all.len(), 50);
    assert!(all.windows(2).all(|w| w[0].cost <= w[1].cost));
    assert!((one[0].cost - all[0].cost).abs() < 1e-12);
    // Join agrees on the full ranking.
    let join: Vec<_> = JoinUpgrader::new(&p, &rp, &t, &rt, &cost_fn, cfg, LowerBound::Conservative)
        .with_bound_mode(BoundMode::Admissible)
        .collect();
    assert_eq!(join.len(), 50);
    for (a, b) in join.iter().zip(&all) {
        assert!((a.cost - b.cost).abs() < 1e-9);
    }
}

#[test]
fn one_dimensional_space() {
    // Degenerate but legal: upgrades must undercut the global minimum.
    let p = PointStore::from_rows(1, vec![vec![0.5], vec![0.3], vec![0.9]]);
    let t = PointStore::from_rows(1, vec![vec![0.7], vec![0.95]]);
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let cost_fn = SumCost::reciprocal(1, 1e-2);
    let cfg = UpgradeConfig::with_epsilon(1e-3);
    let out = improved_probing_topk(&p, &rp, &t, 2, &cost_fn, &cfg);
    assert_eq!(out.len(), 2);
    for r in &out {
        assert!(r.upgraded[0] < 0.3, "must beat the best competitor");
    }
    // The closer product is cheaper to upgrade.
    assert_eq!(out[0].product, skyup::geom::PointId(0));
}
