//! Cross-algorithm oracles: the three top-k approaches must agree on
//! upgrade costs across distributions, dimensionalities, and domain
//! layouts (using the admissible bound mode where exact ordering is
//! required; see DESIGN.md §3).

use skyup::core::cost::SumCost;
use skyup::core::join::{BoundMode, JoinUpgrader, LowerBound};
use skyup::core::{
    basic_probing_topk, improved_probing_topk, single_set_topk, UpgradeConfig,
};
use skyup::data::synthetic::{generate, Distribution, SyntheticConfig};
use skyup::geom::PointStore;
use skyup::rtree::{RTree, RTreeParams};

fn costs(rs: &[skyup::core::UpgradeResult]) -> Vec<f64> {
    rs.iter().map(|r| r.cost).collect()
}

fn assert_costs_eq(a: &[f64], b: &[f64], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() < 1e-9, "{label}: rank {i}: {x} vs {y}");
    }
}

fn run_case(dist: Distribution, dims: usize, p_lo: f64, p_hi: f64, t_lo: f64, t_hi: f64) {
    let p = generate(
        800,
        &SyntheticConfig {
            dims,
            distribution: dist,
            lo: p_lo,
            hi: p_hi,
            seed: 100 + dims as u64,
        },
    );
    let t = generate(
        150,
        &SyntheticConfig {
            dims,
            distribution: dist,
            lo: t_lo,
            hi: t_hi,
            seed: 200 + dims as u64,
        },
    );
    let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(16));
    let rt = RTree::bulk_load(&t, RTreeParams::with_max_entries(16));
    let cost_fn = SumCost::reciprocal(dims, 1e-2);
    let cfg = UpgradeConfig::default();
    let k = 12;

    let basic = basic_probing_topk(&p, &rp, &t, k, &cost_fn, &cfg);
    let improved = improved_probing_topk(&p, &rp, &t, k, &cost_fn, &cfg);
    assert_costs_eq(
        &costs(&basic),
        &costs(&improved),
        &format!("{dist:?} d={dims} basic vs improved"),
    );
    // Identical tie-breaking: same products chosen, not just same costs.
    let ids_basic: Vec<_> = basic.iter().map(|r| r.product).collect();
    let ids_improved: Vec<_> = improved.iter().map(|r| r.product).collect();
    assert_eq!(ids_basic, ids_improved);

    for bound in LowerBound::ALL {
        let join: Vec<_> = JoinUpgrader::new(&p, &rp, &t, &rt, &cost_fn, cfg, bound)
            .with_bound_mode(BoundMode::Admissible)
            .take(k)
            .collect();
        assert_costs_eq(
            &costs(&join),
            &costs(&improved),
            &format!("{dist:?} d={dims} join-{bound:?} vs probing"),
        );
    }
}

#[test]
fn agreement_on_paper_domains() {
    for dist in [
        Distribution::Independent,
        Distribution::AntiCorrelated,
        Distribution::Correlated,
    ] {
        for dims in [2, 4] {
            run_case(dist, dims, 0.0, 1.0, 1.0001, 2.0);
        }
    }
}

#[test]
fn agreement_on_interleaved_domains() {
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        for dims in [2, 3] {
            run_case(dist, dims, 0.0, 1.0, 0.3, 1.3);
        }
    }
}

#[test]
fn single_set_agrees_with_probing_against_self() {
    // Splitting a catalog into {t} vs rest, probing each singleton,
    // must equal the single-set sweep.
    let store = generate(
        300,
        &SyntheticConfig::unit(3, Distribution::Independent, 77),
    );
    let tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(16));
    let cost_fn = SumCost::reciprocal(3, 1e-2);
    let cfg = UpgradeConfig::default();

    let sweep = single_set_topk(&store, &tree, None, 300, &cost_fn, &cfg);
    assert_eq!(sweep.len(), 300);

    // Reference: per-product dominator skyline via scan + Algorithm 1.
    use skyup::core::upgrade_single;
    use skyup::geom::dominance::dominates;
    use skyup::skyline::skyline_naive;
    for r in sweep.iter().take(40) {
        let t = store.point(r.product);
        let dominators: Vec<_> = store
            .iter()
            .filter(|(id, c)| *id != r.product && dominates(c, t))
            .map(|(id, _)| id)
            .collect();
        let sky = skyline_naive(&store, &dominators);
        let (cost, _) = upgrade_single(&store, &sky, t, &cost_fn, &cfg);
        assert!((cost - r.cost).abs() < 1e-9, "product {:?}", r.product);
    }
}

#[test]
fn extreme_k_values() {
    let p = generate(
        400,
        &SyntheticConfig::unit(2, Distribution::Independent, 5),
    );
    let t = generate(
        50,
        &SyntheticConfig {
            dims: 2,
            distribution: Distribution::Independent,
            lo: 1.0,
            hi: 2.0,
            seed: 6,
        },
    );
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let rt = RTree::bulk_load(&t, RTreeParams::default());
    let cost_fn = SumCost::reciprocal(2, 1e-2);
    let cfg = UpgradeConfig::default();

    // k = 1.
    let one = improved_probing_topk(&p, &rp, &t, 1, &cost_fn, &cfg);
    assert_eq!(one.len(), 1);
    // k > |T|: everything returned, still sorted.
    let all = improved_probing_topk(&p, &rp, &t, 1000, &cost_fn, &cfg);
    assert_eq!(all.len(), 50);
    assert!(all.windows(2).all(|w| w[0].cost <= w[1].cost));
    assert!((one[0].cost - all[0].cost).abs() < 1e-12);
    // Join agrees on the full ranking.
    let join: Vec<_> = JoinUpgrader::new(
        &p,
        &rp,
        &t,
        &rt,
        &cost_fn,
        cfg,
        LowerBound::Conservative,
    )
    .with_bound_mode(BoundMode::Admissible)
    .collect();
    assert_eq!(join.len(), 50);
    for (a, b) in join.iter().zip(&all) {
        assert!((a.cost - b.cost).abs() < 1e-9);
    }
}

#[test]
fn one_dimensional_space() {
    // Degenerate but legal: upgrades must undercut the global minimum.
    let p = PointStore::from_rows(1, vec![vec![0.5], vec![0.3], vec![0.9]]);
    let t = PointStore::from_rows(1, vec![vec![0.7], vec![0.95]]);
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let cost_fn = SumCost::reciprocal(1, 1e-2);
    let cfg = UpgradeConfig::with_epsilon(1e-3);
    let out = improved_probing_topk(&p, &rp, &t, 2, &cost_fn, &cfg);
    assert_eq!(out.len(), 2);
    for r in &out {
        assert!(r.upgraded[0] < 0.3, "must beat the best competitor");
    }
    // The closer product is cheaper to upgrade.
    assert_eq!(out[0].product, skyup::geom::PointId(0));
}
