//! End-to-end persistence: build → save → load → query must be
//! indistinguishable from using the original index.

use skyup::core::cost::SumCost;
use skyup::core::join::{join_topk, LowerBound};
use skyup::core::UpgradeConfig;
use skyup::data::synthetic::{paper_competitors, paper_products, Distribution};
use skyup::geom::PointStore;
use skyup::rtree::{RTree, RTreeParams};

#[test]
fn join_on_reloaded_index_matches() {
    let p = paper_competitors(4000, 3, Distribution::AntiCorrelated, 77);
    let t = paper_products(400, 3, Distribution::AntiCorrelated, 78);
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let rt = RTree::bulk_load(&t, RTreeParams::default());

    // Round-trip everything through bytes (as a file would).
    let p2 = PointStore::from_bytes(&p.to_bytes()).unwrap();
    let t2 = PointStore::from_bytes(&t.to_bytes()).unwrap();
    let rp2 = RTree::from_bytes(&rp.to_bytes(), &p2).unwrap();
    let rt2 = RTree::from_bytes(&rt.to_bytes(), &t2).unwrap();

    let cost = SumCost::reciprocal(3, 1e-3);
    let cfg = UpgradeConfig::default();
    let a = join_topk(&p, &rp, &t, &rt, 8, &cost, cfg, LowerBound::Conservative);
    let b = join_topk(
        &p2,
        &rp2,
        &t2,
        &rt2,
        8,
        &cost,
        cfg,
        LowerBound::Conservative,
    );
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.product, y.product);
        assert_eq!(x.upgraded, y.upgraded);
        assert_eq!(x.cost.to_bits(), y.cost.to_bits(), "bit-identical costs");
    }
}

#[test]
fn file_roundtrip_through_disk() {
    let dir = std::env::temp_dir().join("skyup-persist-test");
    std::fs::create_dir_all(&dir).unwrap();
    let p = paper_competitors(1000, 2, Distribution::Independent, 5);
    let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(16));

    let store_path = dir.join("p.store");
    let tree_path = dir.join("p.rtree");
    std::fs::write(&store_path, p.to_bytes()).unwrap();
    std::fs::write(&tree_path, rp.to_bytes()).unwrap();

    let p2 = PointStore::from_bytes(&std::fs::read(&store_path).unwrap()).unwrap();
    let rp2 = RTree::from_bytes(&std::fs::read(&tree_path).unwrap(), &p2).unwrap();
    assert_eq!(p, p2);
    rp2.validate(&p2).unwrap();
    assert_eq!(rp2.stats(), rp.stats());

    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&tree_path).ok();
}

#[test]
fn cross_loading_store_and_tree_is_rejected() {
    let p = paper_competitors(500, 2, Distribution::Independent, 1);
    let q = paper_competitors(500, 2, Distribution::Independent, 2);
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    // Loading p's tree against q's store must fail validation.
    assert!(RTree::from_bytes(&rp.to_bytes(), &q).is_err());
    // And against a different dimensionality, fail fast.
    let r3 = paper_competitors(500, 3, Distribution::Independent, 3);
    assert!(RTree::from_bytes(&rp.to_bytes(), &r3).is_err());
}
