//! End-to-end contract of `skyup test --suite`: the committed
//! `scenarios/` corpus must pass (exit 0), a deliberately broken
//! scenario must turn the suite red (exit 1), a `serve_only` scenario
//! without `--serve` must report partial coverage (exit 2), and
//! `--serve` must replay scenarios through a real `skyup serve` child.
//!
//! Spawns the real binary via `CARGO_BIN_EXE_skyup`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn run_suite(dir: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_skyup"))
        .arg("test")
        .arg("--suite")
        .arg(dir)
        .args(extra)
        .output()
        .expect("failed to spawn the skyup binary")
}

/// A scratch suite directory holding the given (name, contents) files.
fn scratch_suite(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skyup-scenario-suite-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, contents) in files {
        std::fs::write(dir.join(name), contents).unwrap();
    }
    dir
}

const PASSING: &str = "\
[dataset]
competitors = [[0.2, 0.8], [0.8, 0.2], [0.5, 0.5]]

[query]
products = [[1.5, 1.5]]
k = 1

[expect]
completion = \"exact\"
evaluated = 1
";

#[test]
fn committed_corpus_passes() {
    let out = run_suite(&repo_dir().join("scenarios"), &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    // The corpus the CI step depends on: at least 10 scenarios, all PASS.
    let passes = stdout.lines().filter(|l| l.starts_with("PASS ")).count();
    assert!(passes >= 10, "expected >= 10 passing scenarios:\n{stdout}");
    assert!(!stdout.contains("FAIL"), "{stdout}");
    assert!(!stdout.contains("SKIP"), "{stdout}");
    assert!(stdout.contains("0 failed, 0 skipped"), "{stdout}");
}

#[test]
fn broken_scenario_turns_the_suite_red() {
    // Same dataset/query as PASSING but the pinned cost is wrong: the
    // suite must FAIL that scenario and exit 1 even though the other
    // scenario passes.
    let broken = "\
[dataset]
competitors = [[0.2, 0.8], [0.8, 0.2], [0.5, 0.5]]

[query]
products = [[1.5, 1.5]]
k = 1

[expect]
completion = \"exact\"
top = [{ index = 0, cost = 123.456, tol = 1e-9 }]
";
    let dir = scratch_suite("broken", &[("ok.toml", PASSING), ("broken.toml", broken)]);
    let out = run_suite(&dir, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("PASS ok.toml"), "{stdout}");
    assert!(stdout.contains("FAIL broken.toml"), "{stdout}");
    assert!(stdout.contains("expected cost 123.456"), "{stdout}");
    assert!(stdout.contains("1 failed"), "{stdout}");
}

#[test]
fn malformed_scenario_file_is_an_error() {
    let dir = scratch_suite(
        "malformed",
        &[("ok.toml", PASSING), ("bad.toml", "[dataset\noops")],
    );
    let out = run_suite(&dir, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FAIL bad.toml"), "{stdout}");
}

#[test]
fn serve_only_scenario_skips_without_serve_flag() {
    let serve_only = "\
serve_only = true

[dataset]
competitors = [[0.5, 0.5]]

[query]
products = [[1.5, 1.5]]
k = 1

[expect]
completion = \"exact\"
";
    let dir = scratch_suite("skip", &[("ok.toml", PASSING), ("wire.toml", serve_only)]);
    let out = run_suite(&dir, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(2), "{stdout}");
    assert!(stdout.contains("SKIP wire.toml"), "{stdout}");
    assert!(stdout.contains("1 skipped"), "{stdout}");

    // With --serve the same suite runs everything and exits 0.
    let out = run_suite(&dir, &["--serve"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("PASS wire.toml"), "{stdout}");
}

#[test]
fn serve_mode_replays_mutations_over_the_wire() {
    // The mutation scenario runs library-first, then against a real
    // `skyup serve` child process; both must agree with the pinned
    // expectations.
    let mutated = "\
[dataset]
competitors = [[0.5, 0.5], [0.2, 0.8], [0.8, 0.2]]

[[ops]]
add = [0.1, 0.1]

[[ops]]
remove = 0

[query]
products = [[1.5, 1.5]]
k = 1

[expect]
completion = \"exact\"
evaluated = 1
";
    let dir = scratch_suite("wire-mutations", &[("mutated.toml", mutated)]);
    let out = run_suite(&dir, &["--serve"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("PASS mutated.toml"), "{stdout}");
}

#[test]
fn missing_suite_dir_is_an_error() {
    let out = run_suite(Path::new("/nonexistent/suite/dir"), &[]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn empty_suite_dir_is_an_error() {
    let dir = scratch_suite("empty", &[]);
    let out = run_suite(&dir, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("no *.toml or *.json"), "{stdout}");
}
