//! End-to-end smoke test of `skyup serve` / `skyup query --connect`:
//! spawns the real binary on an ephemeral port, drives it with
//! concurrent NDJSON clients while interleaving mutations, checks the
//! serving counters (the cache must actually hit), exercises the
//! client exit-code contract (0 exact / 2 partial / 1 error), and shuts
//! the server down cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_skyup"))
}

fn fixture(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skyup-serve-smoke-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let mut competitors = String::new();
    for i in 0..6 {
        for j in 0..6 {
            competitors.push_str(&format!(
                "{},{}\n",
                0.15 * (i + 1) as f64,
                0.15 * (j + 1) as f64
            ));
        }
    }
    let comp = dir.join("competitors.csv");
    std::fs::write(&comp, competitors).unwrap();
    comp
}

/// Starts a server child and returns it with the address it printed.
fn spawn_server(comp: &PathBuf, extra: &[&str]) -> (Child, String) {
    let mut child = bin()
        .arg("serve")
        .arg("--competitors")
        .arg(comp)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("failed to spawn skyup serve");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected listen line: {line:?}"))
        .to_string();
    (child, addr)
}

/// One NDJSON round trip over an existing connection.
fn round_trip(stream: &mut TcpStream, request: &str) -> String {
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("send request");
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim_end().to_string()
}

fn field_u64(response: &str, key: &str) -> Option<u64> {
    let doc = skyup::obs::json::parse(response).ok()?;
    doc.get(key).and_then(|v| v.as_u64())
}

#[test]
fn serve_answers_concurrent_clients_with_cache_hits() {
    let comp = fixture("concurrent");
    let (mut child, addr) = spawn_server(&comp, &["--threads", "2", "--queue-cap", "32"]);

    // Four clients hammer the same small product set (so answers
    // repeat and the cache can hit) while the main thread mutates.
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(&addr).expect("connect");
                for round in 0..25 {
                    let t = 0.8 + 0.05 * ((c + round) % 4) as f64;
                    let resp = round_trip(
                        &mut stream,
                        &format!("{{\"op\":\"query\",\"products\":[[{t},{t}]],\"k\":1}}"),
                    );
                    assert!(resp.contains("\"ok\":true"), "client {c}: {resp}");
                    assert!(
                        resp.contains("\"completion\":\"exact\""),
                        "client {c}: {resp}"
                    );
                }
            })
        })
        .collect();

    let mut admin = TcpStream::connect(&addr).expect("connect admin");
    let mut added: Vec<u64> = Vec::new();
    for i in 0..10 {
        let v = 0.4 + 0.02 * i as f64;
        let resp = round_trip(
            &mut admin,
            &format!("{{\"op\":\"add\",\"point\":[{v},{v}]}}"),
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        added.push(field_u64(&resp, "cid").expect("add returns a cid"));
    }
    for cid in added.iter().take(5) {
        let resp = round_trip(&mut admin, &format!("{{\"op\":\"remove\",\"cid\":{cid}}}"));
        assert!(resp.contains("\"removed\":true"), "{resp}");
    }
    // A malformed line errors without tearing down the connection.
    let resp = round_trip(&mut admin, "{\"op\":\"nope\"}");
    assert!(resp.contains("\"ok\":false"), "{resp}");

    for client in clients {
        client.join().expect("client thread");
    }

    let stats = round_trip(&mut admin, "{\"op\":\"stats\"}");
    assert!(stats.contains("\"ok\":true"), "{stats}");
    let doc = skyup::obs::json::parse(&stats).expect("stats is JSON");
    let counters = doc.get("counters").expect("counters object");
    let hit = counters.get("cache_hit").and_then(|v| v.as_u64()).unwrap();
    let swaps = counters
        .get("epoch_swaps")
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(hit > 0, "no cache hits under repeated queries: {stats}");
    assert_eq!(
        swaps, 15,
        "10 adds + 5 removes must swap 15 epochs: {stats}"
    );

    let ack = round_trip(&mut admin, "{\"op\":\"shutdown\"}");
    assert!(ack.contains("\"ok\":true"), "{ack}");
    let status = child.wait().expect("server exit");
    assert_eq!(status.code(), Some(0), "clean shutdown must exit 0");
}

/// Batching is a scheduler choice, not a protocol change: the same
/// client workload against a per-request server and a batched server
/// must produce byte-identical response lines — while the batched
/// server also survives hostile input (an oversized line, a client that
/// vanishes mid-request) and reports batch counters in its stats.
#[test]
fn batched_server_matches_per_request_and_survives_hostile_lines() {
    let comp = fixture("batched");
    let (mut plain, plain_addr) = spawn_server(&comp, &["--threads", "2", "--queue-cap", "32"]);
    let (mut batched, batched_addr) = spawn_server(
        &comp,
        &[
            "--threads",
            "2",
            "--queue-cap",
            "32",
            "--batch-window-us",
            "200",
            "--max-batch",
            "16",
        ],
    );

    // The same deterministic workload against both servers: four
    // concurrent connections (the batched dispatcher needs concurrent
    // arrivals to coalesce), each a fixed per-client query sequence.
    // Every response is a pure function of the static snapshot, so the
    // per-client response streams must match byte for byte.
    let run_clients = |addr: &str| -> Vec<Vec<String>> {
        let joins: Vec<_> = (0..4)
            .map(|c: usize| {
                let addr = addr.to_string();
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(&addr).expect("connect");
                    (0..30)
                        .map(|round| {
                            let t = 0.7 + 0.01 * ((c * 31 + round) % 40) as f64;
                            let k = 1 + (c + round) % 3;
                            round_trip(
                                &mut stream,
                                &format!(
                                    "{{\"op\":\"query\",\"products\":[[{t},{t}],[{t},0.95]],\"k\":{k}}}"
                                ),
                            )
                        })
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .collect()
    };
    let plain_lines = run_clients(&plain_addr);
    let batched_lines = run_clients(&batched_addr);
    assert_eq!(
        plain_lines, batched_lines,
        "batched responses must be byte-identical to per-request responses"
    );

    // Hostile input against the live batched server. An oversized line
    // (past the 1 MiB cap) is rejected without killing the connection.
    let mut hostile = TcpStream::connect(&batched_addr).expect("connect hostile");
    let mut big = vec![b'x'; 3 << 19]; // 1.5x the cap
    big.push(b'\n');
    hostile.write_all(&big).expect("send oversized line");
    hostile.flush().unwrap();
    let mut reader = BufReader::new(hostile.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("read rejection");
    assert!(
        line.contains("\"ok\":false") && line.contains("exceeds"),
        "{line}"
    );
    let resp = round_trip(
        &mut hostile,
        "{\"op\":\"query\",\"products\":[[0.9,0.9]],\"k\":1}",
    );
    assert!(
        resp.contains("\"ok\":true"),
        "connection must survive the oversized line: {resp}"
    );

    // A ghost client: one full request, then half a request and a
    // vanishing act. The full request is answered; the server stays up.
    {
        let mut ghost = TcpStream::connect(&batched_addr).expect("connect ghost");
        let resp = round_trip(
            &mut ghost,
            "{\"op\":\"query\",\"products\":[[0.8,0.8]],\"k\":1}",
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        ghost
            .write_all(b"{\"op\":\"query\",\"products\":[[0.8,")
            .expect("send partial line");
        // Dropped here: EOF mid-request on the server side.
    }

    let stats = round_trip(&mut hostile, "{\"op\":\"stats\"}");
    let doc = skyup::obs::json::parse(&stats).expect("stats is JSON");
    let counters = doc.get("counters").expect("counters object");
    let counter = |key: &str| counters.get(key).and_then(|v| v.as_u64()).unwrap();
    assert!(
        counter("batched_requests") > 0,
        "concurrent clients never rode a batch: {stats}"
    );
    assert!(counter("batches_executed") > 0, "{stats}");

    for (child, addr) in [(&mut plain, &plain_addr), (&mut batched, &batched_addr)] {
        let mut admin = TcpStream::connect(addr).expect("connect admin");
        let ack = round_trip(&mut admin, "{\"op\":\"shutdown\"}");
        assert!(ack.contains("\"ok\":true"), "{ack}");
        assert_eq!(child.wait().expect("server exit").code(), Some(0));
    }
}

/// The observability verbs: every queued request produces exactly one
/// trace, metrics polling is itself untraced (so it never perturbs the
/// accounting it reports), the histogram bucket counts conserve, and
/// the slow log catches partial completions even at `--slow-ms 0`.
#[test]
fn metrics_and_trace_verbs_account_for_every_request() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let comp = fixture("telemetry");
    let (mut child, addr) = spawn_server(
        &comp,
        &[
            "--threads",
            "2",
            "--queue-cap",
            "32",
            "--slow-ms",
            "0",
            "--trace-buffer",
            "64",
        ],
    );

    // A poller hammers `metrics` for the whole run: reads must never
    // error and never show up in the trace accounting.
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let (addr, stop) = (addr.clone(), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(&addr).expect("connect poller");
            let mut polls = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let resp = round_trip(&mut stream, "{\"op\":\"metrics\"}");
                assert!(resp.contains("\"ok\":true"), "poll failed: {resp}");
                polls += 1;
            }
            polls
        })
    };

    let clients: Vec<_> = (0..3)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(&addr).expect("connect");
                for round in 0..20 {
                    let t = 0.8 + 0.05 * ((c + round) % 4) as f64;
                    let resp = round_trip(
                        &mut stream,
                        &format!("{{\"op\":\"query\",\"products\":[[{t},{t}]],\"k\":1}}"),
                    );
                    assert!(resp.contains("\"completion\":\"exact\""), "{resp}");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    stop.store(true, Ordering::Relaxed);
    assert!(poller.join().expect("poller thread") > 0);

    let mut admin = TcpStream::connect(&addr).expect("connect admin");
    // One budget-shed query: partial completion, so it must enter the
    // slow log even though the latency threshold is disabled.
    let resp = round_trip(
        &mut admin,
        "{\"op\":\"query\",\"products\":[[0.95,0.95]],\"k\":1,\"max_products\":0}",
    );
    assert!(resp.contains("\"completion\":\"partial\""), "{resp}");

    // Traces are recorded before the reply is sent, so having seen all
    // 61 query responses we must see exactly 61 traces — the metrics
    // polls don't count.
    let metrics = round_trip(&mut admin, "{\"op\":\"metrics\"}");
    let doc = skyup::obs::json::parse(&metrics).expect("metrics is JSON");
    assert_eq!(
        field_u64(&metrics, "traces_recorded"),
        Some(61),
        "{metrics}"
    );
    assert_eq!(field_u64(&metrics, "slow_recorded"), Some(1), "{metrics}");
    let classes = doc.get("classes").expect("classes object");
    let mut total = 0u64;
    for class in [
        "query_cached",
        "query_cold",
        "query_batched",
        "query_shed",
        "mutation",
        "stats",
    ] {
        let cum = classes
            .get(class)
            .and_then(|c| c.get("cumulative"))
            .unwrap_or_else(|| panic!("class {class} missing: {metrics}"));
        let count = cum.get("count").and_then(|v| v.as_u64()).unwrap();
        let bucket_sum: u64 = match cum.get("buckets").expect("buckets array") {
            skyup::obs::json::Json::Arr(bs) => bs
                .iter()
                .map(|b| b.get("count").and_then(|v| v.as_u64()).unwrap())
                .sum(),
            _ => panic!("buckets must be an array"),
        };
        assert_eq!(bucket_sum, count, "{class}: bucket conservation");
        total += count;
    }
    assert_eq!(total, 61, "class counts must sum to traces_recorded");

    // Trace dump: newest-first ids, bounded by n, slow log holds the
    // one partial trace.
    let dump = round_trip(&mut admin, "{\"op\":\"trace\",\"n\":8}");
    let doc = skyup::obs::json::parse(&dump).expect("trace dump is JSON");
    assert_eq!(field_u64(&dump, "count"), Some(8), "{dump}");
    let skyup::obs::json::Json::Arr(traces) = doc.get("traces").expect("traces array") else {
        panic!("traces must be an array: {dump}");
    };
    let ids: Vec<u64> = traces
        .iter()
        .map(|t| t.get("id").and_then(|v| v.as_u64()).unwrap())
        .collect();
    assert!(ids.windows(2).all(|w| w[0] > w[1]), "newest first: {ids:?}");
    for t in traces {
        let total_ns = t.get("total_ns").and_then(|v| v.as_u64()).unwrap();
        let exec_ns = t.get("exec_ns").and_then(|v| v.as_u64()).unwrap();
        assert!(total_ns >= exec_ns, "total covers execution: {dump}");
    }
    let skyup::obs::json::Json::Arr(slow) = doc.get("slow").expect("slow array") else {
        panic!("slow must be an array: {dump}");
    };
    assert_eq!(slow.len(), 1, "{dump}");
    assert_eq!(
        slow[0].get("completion").and_then(|v| v.as_str()),
        Some("partial"),
        "{dump}"
    );

    // n = 0 is a client error, not a server fault.
    let resp = round_trip(&mut admin, "{\"op\":\"trace\",\"n\":0}");
    assert!(resp.contains("\"ok\":false"), "{resp}");

    // A stats read is itself traced (recorded after its own snapshot),
    // so the next metrics read shows exactly one more trace.
    let stats = round_trip(&mut admin, "{\"op\":\"stats\"}");
    assert!(stats.contains("\"queue_depth\""), "{stats}");
    assert_eq!(
        field_u64(&stats, "traces_recorded"),
        None,
        "counters are nested"
    );
    let metrics = round_trip(&mut admin, "{\"op\":\"metrics\"}");
    assert_eq!(
        field_u64(&metrics, "traces_recorded"),
        Some(62),
        "{metrics}"
    );

    let ack = round_trip(&mut admin, "{\"op\":\"shutdown\"}");
    assert!(ack.contains("\"ok\":true"), "{ack}");
    assert_eq!(child.wait().expect("server exit").code(), Some(0));
}

/// The client-side flags for the observability verbs: `--metrics` and
/// `--trace` print the JSON bodies and exit 0.
#[test]
fn query_client_metrics_and_trace_flags() {
    let comp = fixture("client-obs");
    let (mut child, addr) = spawn_server(&comp, &[]);

    let out = bin()
        .args(["query", "--connect", &addr, "-t", "0.9,0.9"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));

    let out = bin()
        .args(["query", "--connect", &addr, "--metrics"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.contains("\"traces_recorded\":1"), "{body}");
    assert!(body.contains("\"query_cold\""), "{body}");

    let out = bin()
        .args(["query", "--connect", &addr, "--trace", "4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(
        body.contains("\"traces\"") && body.contains("\"slow\""),
        "{body}"
    );
    assert!(body.contains("\"count\":1"), "one trace so far: {body}");

    let out = bin()
        .args(["query", "--connect", &addr, "--shutdown"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(child.wait().unwrap().code(), Some(0));
}

#[test]
fn query_client_exit_codes_and_warm_start() {
    let comp = fixture("codes");
    let dir = comp.parent().unwrap().to_path_buf();
    let snap = dir.join("warm.snap");
    let (mut child, addr) = spawn_server(&comp, &["--save-snapshot", snap.to_str().unwrap()]);

    // Exact answer: exit 0, response on stdout.
    let out = bin()
        .args(["query", "--connect", &addr, "-t", "0.95,0.95", "-k", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let exact = String::from_utf8_lossy(&out.stdout).trim_end().to_string();
    assert!(exact.contains("\"completion\":\"exact\""), "{exact}");

    // Budget shed: exit 2.
    let out = bin()
        .args([
            "query",
            "--connect",
            &addr,
            "-t",
            "0.95,0.95",
            "--max-products",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "partial answers must exit 2");

    // Server-side validation error: exit 1 (dims mismatch).
    let out = bin()
        .args(["query", "--connect", &addr, "-t", "0.9,0.9,0.9"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "server errors must exit 1");

    let out = bin()
        .args(["query", "--connect", &addr, "--shutdown"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(child.wait().unwrap().code(), Some(0));

    // A warm-started server answers the same query bit-identically.
    let mut warm = bin()
        .arg("serve")
        .arg("--warm-start")
        .arg(&snap)
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let mut line = String::new();
    BufReader::new(warm.stdout.as_mut().unwrap())
        .read_line(&mut line)
        .unwrap();
    let warm_addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap()
        .to_string();
    let out = bin()
        .args([
            "query",
            "--connect",
            &warm_addr,
            "-t",
            "0.95,0.95",
            "-k",
            "2",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim_end(),
        exact,
        "warm start must reproduce the cold answer byte for byte"
    );
    let out = bin()
        .args(["query", "--connect", &warm_addr, "--shutdown"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(warm.wait().unwrap().code(), Some(0));
}

/// `{"op":"health"}` answers on every server and reflects durability
/// state: a plain server reports `wal:false`, a `--wal` server reports
/// its WAL sequence number advancing with each acked mutation plus a
/// zeroed recovery report on a fresh log. The `--health` client flag
/// prints the body and exits 0.
#[test]
fn health_verb_reports_epoch_and_durability() {
    let comp = fixture("health");
    let (mut child, addr) = spawn_server(&comp, &[]);
    let mut admin = TcpStream::connect(&addr).expect("connect");

    let resp = round_trip(&mut admin, "{\"op\":\"health\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert_eq!(field_u64(&resp, "epoch"), Some(0), "{resp}");
    assert!(field_u64(&resp, "queue_depth").is_some(), "{resp}");
    assert!(resp.contains("\"wal\":false"), "{resp}");
    assert!(resp.contains("\"read_only\":false"), "{resp}");
    assert!(
        !resp.contains("wal_seq"),
        "no durability block without --wal: {resp}"
    );

    let resp = round_trip(&mut admin, "{\"op\":\"add\",\"point\":[0.5,0.5]}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resp = round_trip(&mut admin, "{\"op\":\"health\"}");
    assert_eq!(field_u64(&resp, "epoch"), Some(1), "{resp}");

    let out = bin()
        .args(["query", "--connect", &addr, "--health"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.contains("\"epoch\":1"), "{body}");

    let out = bin()
        .args(["query", "--connect", &addr, "--shutdown"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(child.wait().unwrap().code(), Some(0));

    // A durable server: wal_seq tracks acked mutations, recovery report
    // is all zeros on a freshly initialised log.
    let wal_dir = std::env::temp_dir().join("skyup-serve-smoke-health-wal");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let (mut child, addr) = spawn_server(&comp, &["--wal", wal_dir.to_str().unwrap()]);
    let mut admin = TcpStream::connect(&addr).expect("connect");
    let resp = round_trip(&mut admin, "{\"op\":\"health\"}");
    assert!(resp.contains("\"wal\":true"), "{resp}");
    assert_eq!(field_u64(&resp, "wal_seq"), Some(0), "{resp}");
    for i in 0..3 {
        let v = 0.3 + 0.01 * i as f64;
        let resp = round_trip(
            &mut admin,
            &format!("{{\"op\":\"add\",\"point\":[{v},{v}]}}"),
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }
    let resp = round_trip(&mut admin, "{\"op\":\"health\"}");
    assert_eq!(field_u64(&resp, "wal_seq"), Some(3), "{resp}");
    assert_eq!(field_u64(&resp, "epoch"), Some(3), "{resp}");
    assert!(resp.contains("\"read_only\":false"), "{resp}");
    let doc = skyup::obs::json::parse(&resp).expect("health is JSON");
    let recovery = doc.get("recovery").expect("recovery object");
    for key in ["checkpoint_seq", "replayed", "torn_truncated"] {
        assert_eq!(
            recovery.get(key).and_then(|v| v.as_u64()),
            Some(0),
            "fresh log must report a zeroed recovery: {resp}"
        );
    }

    let ack = round_trip(&mut admin, "{\"op\":\"shutdown\"}");
    assert!(ack.contains("\"ok\":true"), "{ack}");
    assert_eq!(child.wait().unwrap().code(), Some(0));
}

#[test]
fn bad_arguments_exit_one() {
    // serve with no source of competitors.
    let out = bin().arg("serve").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    // query without --connect.
    let out = bin().args(["query", "-t", "0.9,0.9"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    // a corrupt warm-start snapshot is rejected, not a panic.
    let dir = std::env::temp_dir().join("skyup-serve-smoke-corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.snap");
    std::fs::write(&bad, b"not a snapshot at all").unwrap();
    let out = bin()
        .arg("serve")
        .arg("--warm-start")
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("snapshot"), "{stderr}");
}
