//! Integration tests for the library extensions: floors, discrete
//! domains, skybands, pruned and parallel probing, the single-set
//! variant, and the optimal-upgrade oracle — exercised through the
//! facade crate the way a downstream user would.

use skyup::core::cost::SumCost;
use skyup::core::probing::improved_probing_topk_pruned;
use skyup::core::{
    improved_probing_topk, improved_probing_topk_parallel, optimal_upgrade, single_set_topk,
    upgrade_single, upgrade_single_discrete, upgrade_single_with_floors, DiscreteDomains,
    UpgradeConfig,
};
use skyup::data::synthetic::{
    generate, paper_competitors, paper_products, Distribution, SyntheticConfig,
};
use skyup::geom::dominance::dominates;
use skyup::geom::{PointId, PointStore};
use skyup::rtree::{RTree, RTreeParams};
use skyup::skyline::{dominating_skyline, dominator_count, skyband, skyline_sfs};

fn cost2() -> SumCost {
    SumCost::reciprocal(2, 1e-2)
}

#[test]
fn skyband_ranks_upgrade_candidates() {
    // Products in low skybands (few dominators) are the cheap upgrades
    // the top-k query surfaces: verify the correlation on real output.
    let p = paper_competitors(2000, 2, Distribution::Independent, 21);
    let t = generate(
        200,
        &SyntheticConfig {
            dims: 2,
            distribution: Distribution::Independent,
            lo: 0.2,
            hi: 1.2,
            seed: 22,
        },
    );
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let cfg = UpgradeConfig::default();
    let cost = cost2();
    let ranking = improved_probing_topk(&p, &rp, &t, 200, &cost, &cfg);

    let p_ids: Vec<PointId> = p.ids().collect();
    let counts: Vec<usize> = ranking
        .iter()
        .map(|r| dominator_count(&p, &p_ids, &r.original))
        .collect();
    // The cheapest quartile should average far fewer dominators than
    // the most expensive quartile.
    let q = counts.len() / 4;
    let cheap: f64 = counts[..q].iter().sum::<usize>() as f64 / q as f64;
    let dear: f64 = counts[counts.len() - q..].iter().sum::<usize>() as f64 / q as f64;
    assert!(
        cheap < dear,
        "cheap quartile has {cheap} dominators on average vs {dear}"
    );
}

#[test]
fn skyband_of_catalog_contains_all_zero_cost_products() {
    let store = generate(
        300,
        &SyntheticConfig::unit(3, Distribution::Independent, 23),
    );
    let tree = RTree::bulk_load(&store, RTreeParams::default());
    let cost = SumCost::reciprocal(3, 1e-2);
    let plan = single_set_topk(&store, &tree, None, 300, &cost, &UpgradeConfig::default());
    let ids: Vec<PointId> = store.ids().collect();
    let band1: std::collections::HashSet<PointId> = skyband(&store, &ids, 1)
        .into_iter()
        .map(|(p, _)| p)
        .collect();
    for r in &plan {
        assert_eq!(
            r.cost == 0.0,
            band1.contains(&r.product),
            "zero-cost products are exactly the skyline (product {:?})",
            r.product
        );
    }
}

#[test]
fn floors_interpolate_between_free_and_infeasible() {
    let p = paper_competitors(500, 2, Distribution::Independent, 31);
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let t = [1.1, 1.1];
    let sky = dominating_skyline(&p, &rp, &t);
    let cost = cost2();
    let cfg = UpgradeConfig::default();

    let (unconstrained, _) = upgrade_single(&p, &sky, &t, &cost, &cfg);
    // No floors: matches Algorithm 1.
    let loose =
        upgrade_single_with_floors(&p, &sky, &t, &[f64::NEG_INFINITY; 2], &cost, &cfg).unwrap();
    assert!((loose.cost - unconstrained).abs() < 1e-9);

    // Progressively raising floors only raises costs, until infeasible.
    let mut last = loose.cost;
    let mut became_infeasible = false;
    for floor in [0.0, 0.2, 0.4, 0.6, 0.9] {
        match upgrade_single_with_floors(&p, &sky, &t, &[floor, floor], &cost, &cfg) {
            Some(out) => {
                assert!(
                    out.cost + 1e-9 >= last,
                    "floor {floor}: cost decreased {last} -> {}",
                    out.cost
                );
                assert!(out.upgraded.iter().all(|&v| v >= floor));
                last = out.cost;
            }
            None => {
                became_infeasible = true;
                break;
            }
        }
    }
    assert!(became_infeasible, "high floors must eventually trap t");
}

#[test]
fn discrete_grid_results_live_on_the_grid_and_cost_more() {
    let p = paper_competitors(400, 2, Distribution::AntiCorrelated, 41);
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let cost = cost2();
    let cfg = UpgradeConfig::default();
    let domains = DiscreteDomains::uniform(2, 0.0, 0.05, 41); // 0.00..2.00

    for seed in 0..10u64 {
        // Products on the grid inside (1, 2]^2 — taken straight from the
        // level lists so membership is bit-exact.
        let t = [
            domains.levels(0)[21 + (seed % 7) as usize],
            domains.levels(1)[23 + (seed % 5) as usize],
        ];
        let sky = dominating_skyline(&p, &rp, &t);
        if sky.is_empty() {
            continue;
        }
        let (cont, _) = upgrade_single(&p, &sky, &t, &cost, &cfg);
        if let Some((disc, up)) = upgrade_single_discrete(&p, &sky, &t, &domains, &cost, &cfg) {
            assert!(domains.contains(&up));
            assert!(
                disc + 1e-9 >= cont,
                "discrete cost {disc} below continuous {cont}"
            );
            assert!(!sky.iter().any(|&s| dominates(p.point(s), &up)));
        }
    }
}

#[test]
fn parallel_and_pruned_probing_match_baseline() {
    let p = paper_competitors(3000, 3, Distribution::Independent, 51);
    let t = paper_products(400, 3, Distribution::Independent, 52);
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let cost = SumCost::reciprocal(3, 1e-3);
    let cfg = UpgradeConfig::default();

    let baseline = improved_probing_topk(&p, &rp, &t, 7, &cost, &cfg);
    let parallel = improved_probing_topk_parallel(&p, &rp, &t, 7, &cost, &cfg, 4);
    let (pruned, stats) = improved_probing_topk_pruned(&p, &rp, &t, 7, &cost, &cfg);

    for (a, b) in baseline.iter().zip(&parallel) {
        assert_eq!(a.product, b.product);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    }
    for (a, b) in baseline.iter().zip(&pruned) {
        assert_eq!(a.product, b.product);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    }
    assert_eq!(stats.evaluated + stats.pruned, 400);
}

#[test]
fn optimal_oracle_bounds_all_heuristics() {
    let p = generate(
        100,
        &SyntheticConfig::unit(2, Distribution::AntiCorrelated, 61),
    );
    let ids: Vec<PointId> = p.ids().collect();
    let cost = cost2();
    let cfg = UpgradeConfig::default();
    for seed in 0..10 {
        let t = [0.9 + 0.01 * seed as f64, 0.95 + 0.005 * seed as f64];
        let dominators: Vec<PointId> = ids
            .iter()
            .copied()
            .filter(|&id| dominates(p.point(id), &t))
            .collect();
        let sky = skyline_sfs(&p, &dominators);
        if sky.is_empty() {
            continue;
        }
        let (opt, opt_up) = optimal_upgrade(&p, &sky, &t, &cost, &cfg);
        let (alg, _) = upgrade_single(&p, &sky, &t, &cost, &cfg);
        assert!(opt <= alg + 1e-9);
        assert!(!sky.iter().any(|&s| dominates(p.point(s), &opt_up)));
        // The floors version with no floors also respects the oracle.
        let floors =
            upgrade_single_with_floors(&p, &sky, &t, &[f64::NEG_INFINITY; 2], &cost, &cfg).unwrap();
        assert!(opt <= floors.cost + 1e-9);
    }
}

#[test]
fn monotonicity_diagnostics_pass_on_experiment_configuration() {
    use skyup::core::cost::{verify_monotone_axes, verify_monotone_on};
    let store = generate(
        200,
        &SyntheticConfig::unit(3, Distribution::Independent, 71),
    );
    let cost = SumCost::reciprocal(3, 1e-3);
    assert!(verify_monotone_on(&cost, &store, usize::MAX).is_ok());
    assert!(verify_monotone_axes(&cost, 0.0, 2.0, 128).is_ok());
}

#[test]
fn cli_module_reachable_from_facade() {
    let err = skyup::cli::Config::parse(&["--help".to_string()]).unwrap_err();
    assert!(err.contains("usage:"));
}

#[test]
fn deleted_competitors_reopen_the_market() {
    // Remove the strongest competitors and watch upgrade costs drop.
    let mut p = PointStore::new(2);
    for i in 0..50 {
        let v = 0.3 + 0.01 * i as f64;
        p.push(&[v, 0.8 - 0.01 * i as f64]);
    }
    let strong = p.push(&[0.05, 0.05]); // dominates everything below
    let mut rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
    let t = PointStore::from_rows(2, vec![vec![0.9, 0.9]]);
    let cost = cost2();
    let cfg = UpgradeConfig::default();

    let before = improved_probing_topk(&p, &rp, &t, 1, &cost, &cfg)[0].cost;
    assert!(rp.remove(&p, strong));
    let after = improved_probing_topk(&p, &rp, &t, 1, &cost, &cfg)[0].cost;
    assert!(
        after < before,
        "removing the dominant competitor must cheapen upgrades ({before} -> {after})"
    );
}
