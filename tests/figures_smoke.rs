//! Smoke tests for the figure drivers: every experiment pipeline must
//! run end-to-end at a miniature scale, so a regression in any layer is
//! caught by `cargo test` without waiting for a full benchmark run.

use skyup_bench::figures::{large_figure, progressive_figure, small_figure};
use skyup_bench::runner::{build_trees, progressive_times, run_basic, run_improved, run_join};
use skyup_bench::{k_sweep, BenchArgs, LargeParams, SmallParams};
use skyup_core::join::LowerBound;
use skyup_data::synthetic::{paper_competitors, paper_products, Distribution};
use skyup_data::wine::WineAttr;
use skyup_data::{split_products, wine_dataset};

fn tiny_args() -> BenchArgs {
    BenchArgs {
        scale: 0.001,
        seed: 7,
    }
}

#[test]
fn parameter_tables_scale() {
    let args = tiny_args();
    let small = SmallParams::new(&args);
    assert_eq!(small.p_default, 1000);
    assert_eq!(small.t_default, 100);
    let large = LargeParams::new(&args);
    assert_eq!(large.d_default, 5);
    assert_eq!(LargeParams::p_sweep(&args).len(), 4);
    assert_eq!(k_sweep(), vec![1, 5, 10, 15, 20]);
}

#[test]
fn figure4_pipeline_runs_small() {
    // One wine combination, reduced T, all five algorithm columns.
    let attrs = [WineAttr::Chlorides, WineAttr::Sulphates];
    let full = wine_dataset(&attrs, 7);
    let (p, t_full) = split_products(&full, 1000, 7);
    // Shrink T for speed.
    let mut t = skyup_geom::PointStore::new(2);
    for (i, (_, c)) in t_full.iter().enumerate() {
        if i < 100 {
            t.push(c);
        }
    }
    let (rp, rt) = build_trees(&p, &t);
    assert!(run_basic(&p, &rp, &t, 1).as_nanos() > 0);
    assert!(run_improved(&p, &rp, &t, 1).as_nanos() > 0);
    for bound in LowerBound::ALL {
        assert!(run_join(&p, &rp, &t, &rt, 1, bound).as_nanos() > 0);
    }
}

#[test]
fn progressive_measurement_is_monotone() {
    let p = paper_competitors(2000, 2, Distribution::AntiCorrelated, 1);
    let t = paper_products(300, 2, Distribution::AntiCorrelated, 2);
    let (rp, rt) = build_trees(&p, &t);
    let ks = k_sweep();
    for bound in LowerBound::ALL {
        let series = progressive_times(&p, &rp, &t, &rt, &ks, bound);
        assert_eq!(series.len(), ks.len());
        assert!(
            series.windows(2).all(|w| w[0].1 <= w[1].1),
            "time to k must be non-decreasing in k ({bound:?})"
        );
    }
}

#[test]
fn figure_drivers_run_end_to_end_tiny() {
    // The printed output goes to the test harness's captured stdout;
    // what matters is that every panel completes without panicking.
    let args = tiny_args();
    small_figure(Distribution::Independent, &args);
    large_figure(Distribution::Independent, &args);
    progressive_figure(Distribution::Independent, &args);
}
