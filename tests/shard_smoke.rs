//! Multi-shard smoke: two real `skyup serve --shard-id` processes and a
//! real `skyup coordinate` process in front of them, driven over TCP
//! with mixed mutations and queries. Every gathered answer must be
//! byte-for-byte what a cold in-process oracle holding the full
//! competitor set produces at the same epoch, the topology must
//! describe itself over `health`, shards must refuse direct mutations,
//! and the scatter/gather counter invariants must hold on `stats`.

use skyup_serve::proto::render_query_response;
use skyup_serve::{execute_query, CostSpec, Engine, EngineConfig, Mutation, QueryRequest};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_skyup"))
}

fn base_rows() -> Vec<Vec<f64>> {
    let mut rng = skyup::data::Rng::seed_from_u64(0x54a2d);
    (0..24)
        .map(|_| vec![rng.range_f64(0.1, 0.9), rng.range_f64(0.1, 0.9)])
        .collect()
}

fn fixture() -> PathBuf {
    let dir = std::env::temp_dir().join("skyup-shard-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut csv = String::new();
    for row in base_rows() {
        csv.push_str(&format!("{},{}\n", row[0], row[1]));
    }
    let comp = dir.join("competitors.csv");
    std::fs::write(&comp, csv).unwrap();
    comp
}

/// Spawns one `skyup` server subcommand and reads its listen line.
fn spawn_listening(mut cmd: Command) -> (Child, String) {
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("failed to spawn skyup");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected listen line: {line:?}"))
        .to_string();
    (child, addr)
}

fn spawn_shard(comp: &Path, id: u32, shards: u32) -> (Child, String) {
    let mut cmd = bin();
    cmd.arg("serve")
        .args(["--competitors", comp.to_str().unwrap()])
        .args(["--shard-id", &id.to_string()])
        .args(["--shards", &shards.to_string()]);
    spawn_listening(cmd)
}

fn spawn_coordinator(comp: &Path, shard_addrs: &[String]) -> (Child, String) {
    let mut cmd = bin();
    cmd.arg("coordinate")
        .args(["--competitors", comp.to_str().unwrap()]);
    for addr in shard_addrs {
        cmd.args(["--shard", addr]);
    }
    spawn_listening(cmd)
}

fn round_trip(stream: &mut TcpStream, request: &str) -> String {
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("send request");
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim_end().to_string()
}

fn query_line(products: &[Vec<f64>], k: usize) -> String {
    let prods: Vec<String> = products
        .iter()
        .map(|p| format!("[{},{}]", p[0], p[1]))
        .collect();
    format!(
        "{{\"op\":\"query\",\"products\":[{}],\"k\":{k},\"cost\":\"reciprocal:0.001\"}}",
        prods.join(",")
    )
}

fn get_u64(doc: &skyup::obs::json::Json, key: &str) -> u64 {
    doc.get(key)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("response lacks {key}"))
}

#[test]
fn two_shards_and_a_coordinator_match_the_single_engine_oracle() {
    let comp = fixture();
    let (mut shard0, addr0) = spawn_shard(&comp, 0, 2);
    let (mut shard1, addr1) = spawn_shard(&comp, 1, 2);
    let (mut coord, coord_addr) = spawn_coordinator(&comp, &[addr0.clone(), addr1.clone()]);

    // The oracle: a single cold engine over the same seed rows.
    let mut store = skyup::geom::PointStore::new(2);
    for row in base_rows() {
        store.push(&row);
    }
    let oracle = Engine::with_competitors(store, EngineConfig::default());

    let mut conn = TcpStream::connect(&coord_addr).expect("connect to coordinator");
    let mut rng = skyup::data::Rng::seed_from_u64(0x0b5e55);
    let mut live: Vec<u64> = (0..24).collect();
    let mut queries = 0u64;
    for _ in 0..60 {
        match rng.range_usize(4) {
            0 => {
                let p = vec![rng.range_f64(0.1, 0.9), rng.range_f64(0.1, 0.9)];
                let line = round_trip(
                    &mut conn,
                    &format!("{{\"op\":\"add\",\"point\":[{},{}]}}", p[0], p[1]),
                );
                let want = oracle.apply(Mutation::AddCompetitor(p)).unwrap();
                let doc = skyup::obs::json::parse(&line).expect("add ack is JSON");
                assert_eq!(get_u64(&doc, "epoch"), want.epoch, "add epoch: {line}");
                assert_eq!(get_u64(&doc, "cid"), want.cid.unwrap(), "add cid: {line}");
                live.push(want.cid.unwrap());
            }
            1 if !live.is_empty() => {
                let cid = live.swap_remove(rng.range_usize(live.len()));
                let line = round_trip(&mut conn, &format!("{{\"op\":\"remove\",\"cid\":{cid}}}"));
                let want = oracle.apply(Mutation::RemoveCompetitor(cid)).unwrap();
                let doc = skyup::obs::json::parse(&line).expect("remove ack is JSON");
                assert_eq!(get_u64(&doc, "epoch"), want.epoch, "remove epoch: {line}");
                assert_eq!(
                    doc.get("removed"),
                    Some(&skyup::obs::json::Json::Bool(want.removed)),
                    "removed flag: {line}"
                );
            }
            _ => {
                let n = 1 + rng.range_usize(2);
                let products: Vec<Vec<f64>> = (0..n)
                    .map(|_| vec![rng.range_f64(0.2, 1.1), rng.range_f64(0.2, 1.1)])
                    .collect();
                let k = 1 + rng.range_usize(3);
                let got = round_trip(&mut conn, &query_line(&products, k));
                let req = QueryRequest {
                    products,
                    k,
                    cost: CostSpec::Reciprocal(1e-3),
                    max_products: None,
                    deadline: None,
                };
                let want = execute_query(&oracle, &req).unwrap();
                assert_eq!(got, render_query_response(&want), "gathered response");
                queries += 1;
            }
        }
    }

    // Topology self-description.
    let health = round_trip(&mut conn, "{\"op\":\"health\"}");
    let doc = skyup::obs::json::parse(&health).expect("health is JSON");
    assert_eq!(
        doc.get("role").and_then(|v| v.as_str()),
        Some("coordinator"),
        "{health}"
    );
    assert_eq!(get_u64(&doc, "shards"), 2, "{health}");
    let status = match doc.get("shard_status") {
        Some(skyup::obs::json::Json::Arr(items)) => items.clone(),
        other => panic!("shard_status missing: {other:?}"),
    };
    assert_eq!(status.len(), 2);
    for entry in &status {
        assert_eq!(
            entry.get("reachable"),
            Some(&skyup::obs::json::Json::Bool(true)),
            "{health}"
        );
    }

    let mut shard_conn = TcpStream::connect(&addr0).expect("connect to shard 0");
    let shard_health = round_trip(&mut shard_conn, "{\"op\":\"health\"}");
    let doc = skyup::obs::json::parse(&shard_health).expect("shard health is JSON");
    assert_eq!(
        doc.get("role").and_then(|v| v.as_str()),
        Some("shard"),
        "{shard_health}"
    );
    assert_eq!(get_u64(&doc, "shard_id"), 0, "{shard_health}");

    // Shards refuse mutations that bypass the two-phase publish.
    let refused = round_trip(&mut shard_conn, "{\"op\":\"add\",\"point\":[0.5,0.5]}");
    assert!(
        refused.contains("coordinator"),
        "direct shard mutation must be refused: {refused}"
    );

    // Counter invariants on the coordinator's stats line.
    let stats = round_trip(&mut conn, "{\"op\":\"stats\"}");
    let doc = skyup::obs::json::parse(&stats).expect("stats is JSON");
    let counters = doc.get("counters").expect("counters object").clone();
    let flips = get_u64(&counters, "epoch_flips");
    assert_eq!(
        get_u64(&counters, "stage_acks"),
        flips * 2,
        "two stage acks per publish: {stats}"
    );
    assert_eq!(
        get_u64(&counters, "scatter_probes"),
        queries * 2,
        "two probes per gathered query: {stats}"
    );
    assert!(
        get_u64(&counters, "gather_points") >= get_u64(&counters, "merge_dropped"),
        "{stats}"
    );
    assert_eq!(get_u64(&doc, "epoch"), flips, "every publish flipped once");

    // Clean shutdown: coordinator first, then the shards.
    let bye = round_trip(&mut conn, "{\"op\":\"shutdown\"}");
    assert!(bye.contains("ok"), "{bye}");
    assert!(coord.wait().expect("coordinator exit").success());
    for (child, addr) in [(&mut shard0, &addr0), (&mut shard1, &addr1)] {
        let mut c = TcpStream::connect(addr).expect("connect for shutdown");
        round_trip(&mut c, "{\"op\":\"shutdown\"}");
        assert!(child.wait().expect("shard exit").success());
    }
}
