//! Kill-crash chaos harness: the real `skyup serve` binary, running
//! with `--wal --fsync always`, is SIGKILLed at arbitrary points —
//! right after acked mutations and in the middle of pipelined bursts —
//! then restarted with the same arguments. After every crash the
//! harness asserts the durability contract:
//!
//! * **acked ⊆ applied ⊆ sent** — every acknowledged mutation survives,
//!   and whatever survived is a prefix of the send order (one
//!   connection, so the server applied the lines in order);
//! * the recovered state is **bit-identical** to a cold in-process
//!   oracle built from the base set plus that applied prefix: the same
//!   queries produce byte-for-byte the same response lines (epochs
//!   included — the engine publishes exactly one epoch per applied
//!   mutation, so oracle and server agree on the epoch too);
//! * a torn tail never aborts recovery, and a clean shutdown leaves
//!   nothing to truncate (`torn_truncated == 0` on the next start).

use skyup_serve::proto::render_query_response;
use skyup_serve::{execute_query, CostSpec, Engine, EngineConfig, Mutation, QueryRequest};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_skyup"))
}

fn base_rows() -> Vec<Vec<f64>> {
    let mut rng = skyup::data::Rng::seed_from_u64(0xBA5E);
    (0..12)
        .map(|_| vec![rng.range_f64(0.1, 0.9), rng.range_f64(0.1, 0.9)])
        .collect()
}

fn fixture() -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join("skyup-crash-recovery");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut csv = String::new();
    for row in base_rows() {
        csv.push_str(&format!("{},{}\n", row[0], row[1]));
    }
    let comp = dir.join("competitors.csv");
    std::fs::write(&comp, csv).unwrap();
    (comp, dir.join("wal"))
}

/// Starts the server with identical arguments every time — the durable
/// state in `wal` wins over the seed file on restart.
fn spawn_server(comp: &Path, wal: &Path) -> (Child, String) {
    let mut child = bin()
        .arg("serve")
        .args(["--competitors", comp.to_str().unwrap()])
        .args(["--wal", wal.to_str().unwrap()])
        .args(["--fsync", "always", "--checkpoint-every", "7"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("failed to spawn skyup serve");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected listen line: {line:?}"))
        .to_string();
    (child, addr)
}

fn round_trip(stream: &mut TcpStream, request: &str) -> String {
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("send request");
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim_end().to_string()
}

fn mutation_line(m: &Mutation) -> String {
    match m {
        Mutation::AddCompetitor(coords) => {
            format!("{{\"op\":\"add\",\"point\":[{},{}]}}", coords[0], coords[1])
        }
        Mutation::RemoveCompetitor(cid) => format!("{{\"op\":\"remove\",\"cid\":{cid}}}"),
        Mutation::AddCompetitorWithCid(..) => {
            unreachable!("the driver only sends client-facing mutations")
        }
    }
}

struct Health {
    epoch: u64,
    wal_seq: u64,
    torn_truncated: u64,
    replayed: u64,
}

fn read_health(addr: &str) -> Health {
    let mut stream = TcpStream::connect(addr).expect("connect for health");
    let line = round_trip(&mut stream, "{\"op\":\"health\"}");
    let doc = skyup::obs::json::parse(&line).expect("health is JSON");
    let u = |v: &skyup::obs::json::Json, key: &str| {
        v.get(key)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("health lacks {key}: {line}"))
    };
    let recovery = doc.get("recovery").expect("recovery object");
    Health {
        epoch: u(&doc, "epoch"),
        wal_seq: u(&doc, "wal_seq"),
        torn_truncated: u(recovery, "torn_truncated"),
        replayed: u(recovery, "replayed"),
    }
}

/// The probe grid compared line-by-line between server and oracle.
fn probe_requests() -> Vec<(String, QueryRequest)> {
    [
        (0.85, 0.85),
        (0.95, 0.6),
        (0.6, 0.95),
        (0.99, 0.99),
        (0.7, 0.7),
    ]
    .iter()
    .map(|&(x, y)| {
        (
            format!("{{\"op\":\"query\",\"products\":[[{x},{y}]],\"k\":2}}"),
            QueryRequest {
                products: vec![vec![x, y]],
                k: 2,
                cost: CostSpec::default(),
                max_products: None,
                deadline: None,
            },
        )
    })
    .collect()
}

/// Asserts the restarted server answers every probe byte-identically to
/// a cold oracle holding the base set plus `history`.
fn assert_matches_oracle(addr: &str, history: &[Mutation]) {
    let oracle = Engine::with_competitors(
        skyup::geom::PointStore::from_rows(2, base_rows()),
        EngineConfig::default(),
    );
    for m in history {
        let out = oracle.apply(m.clone()).expect("oracle mutation");
        assert!(
            out.cid.is_some() || out.removed,
            "an applied mutation must not replay as a no-op: {m:?}"
        );
    }
    let mut stream = TcpStream::connect(addr).expect("connect for probes");
    for (line, req) in probe_requests() {
        let server = round_trip(&mut stream, &line);
        let expect = render_query_response(&execute_query(&oracle, &req).expect("oracle query"));
        assert_eq!(
            server,
            expect,
            "recovered server diverges from the {}-mutation oracle",
            history.len()
        );
    }
}

/// Send-order bookkeeping across crashes.
struct Driver {
    /// Mutations the current server lineage may have applied, in send
    /// order. Truncated to the applied prefix after each recovery.
    history: Vec<Mutation>,
    /// 1-based index in `history` of the last *acknowledged* mutation:
    /// the floor recovery must reach.
    min_applied: usize,
    /// Cids acked live: the base set plus acked adds, minus acked
    /// removals. Removals are only ever sent against these.
    live: Vec<u64>,
    rng: skyup::data::Rng,
}

impl Driver {
    fn new() -> Driver {
        Driver {
            history: Vec::new(),
            min_applied: 0,
            live: (0..base_rows().len() as u64).collect(),
            rng: skyup::data::Rng::seed_from_u64(0xC4A5_4E57),
        }
    }

    /// The cid the next applied add will be assigned: base size plus
    /// adds already in the (truncated) history.
    fn next_cid(&self) -> u64 {
        let adds = self
            .history
            .iter()
            .filter(|m| matches!(m, Mutation::AddCompetitor(_)))
            .count();
        (base_rows().len() + adds) as u64
    }

    fn random_add(&mut self) -> Mutation {
        Mutation::AddCompetitor(vec![
            self.rng.range_f64(0.05, 0.95),
            self.rng.range_f64(0.05, 0.95),
        ])
    }

    /// One serially-acked mutation: send, read the ack, record it as
    /// durable (the server fsynced before answering).
    fn acked(&mut self, stream: &mut TcpStream) {
        let m = if self.live.len() > 4 && self.rng.range_usize(4) == 0 {
            let cid = self.live.remove(self.rng.range_usize(self.live.len()));
            Mutation::RemoveCompetitor(cid)
        } else {
            let cid = self.next_cid();
            self.live.push(cid);
            self.random_add()
        };
        let expect_cid = match &m {
            Mutation::AddCompetitor(_) => Some(self.next_cid()),
            Mutation::RemoveCompetitor(_) => None,
            Mutation::AddCompetitorWithCid(..) => {
                unreachable!("the driver only sends client-facing mutations")
            }
        };
        let resp = round_trip(stream, &mutation_line(&m));
        assert!(resp.contains("\"ok\":true"), "{resp}");
        if let Some(cid) = expect_cid {
            assert!(
                resp.contains(&format!("\"cid\":{cid}")),
                "cid assignment must be deterministic in send order: {resp}"
            );
        } else {
            assert!(resp.contains("\"removed\":true"), "{resp}");
        }
        self.history.push(m);
        self.min_applied = self.history.len();
    }

    /// A pipelined burst: adds written back-to-back with no acks read.
    /// Any suffix may be lost to the crash.
    fn burst(&mut self, stream: &mut TcpStream, n: usize) {
        for _ in 0..n {
            let m = self.random_add();
            stream
                .write_all(format!("{}\n", mutation_line(&m)).as_bytes())
                .expect("send burst line");
            self.history.push(m);
        }
        stream.flush().unwrap();
    }

    /// Reconciles the books after a restart: recovery reported `applied`
    /// mutations total, which must cover every ack and no more than was
    /// sent. Unacked adds that did not survive are rolled back from the
    /// live set (they were never acked, so they were never in it).
    fn reconcile(&mut self, applied: u64) {
        let applied = applied as usize;
        assert!(
            applied >= self.min_applied,
            "acked mutation lost: recovery applied {applied}, but {} were acked",
            self.min_applied
        );
        assert!(
            applied <= self.history.len(),
            "recovery applied {applied} mutations but only {} were sent",
            self.history.len()
        );
        self.history.truncate(applied);
        self.min_applied = applied;
    }
}

#[test]
fn killed_server_recovers_every_acked_mutation_bit_identically() {
    let (comp, wal) = fixture();
    let (mut child, mut addr) = spawn_server(&comp, &wal);
    let mut driver = Driver::new();

    // Three crash rounds: serial acked mutations (some interleaved
    // queries), then a pipelined burst, then SIGKILL mid-flight.
    for round in 0..3 {
        let mut stream = TcpStream::connect(&addr).expect("connect driver");
        for i in 0..10 {
            driver.acked(&mut stream);
            if i % 4 == 1 {
                let resp = round_trip(
                    &mut stream,
                    "{\"op\":\"query\",\"products\":[[0.9,0.9]],\"k\":1}",
                );
                assert!(resp.contains("\"ok\":true"), "{resp}");
            }
        }
        driver.burst(&mut stream, 4 + round * 3);
        // Give the server a moment to get into the middle of the burst,
        // then kill it dead. No shutdown handshake, no flush.
        std::thread::sleep(std::time::Duration::from_millis(5));
        child.kill().expect("SIGKILL");
        child.wait().expect("reap killed server");

        (child, addr) = spawn_server(&comp, &wal);
        let health = read_health(&addr);
        assert_eq!(
            health.epoch, health.wal_seq,
            "one epoch per applied mutation, one sequence number per epoch"
        );
        driver.reconcile(health.epoch);
        assert_matches_oracle(&addr, &driver.history);

        // The recovered server keeps serving and keeps logging: one
        // more acked mutation before the next crash round.
        let mut stream = TcpStream::connect(&addr).expect("connect post-recovery");
        driver.acked(&mut stream);
        let health = read_health(&addr);
        assert_eq!(health.epoch as usize, driver.history.len());
    }

    // Final round: a clean shutdown instead of a kill. Everything sent
    // was acked, so the next start replays a fully-covered log with
    // nothing torn — and nothing to roll back.
    let mut stream = TcpStream::connect(&addr).expect("connect final round");
    for _ in 0..5 {
        driver.acked(&mut stream);
    }
    let ack = round_trip(&mut stream, "{\"op\":\"shutdown\"}");
    assert!(ack.contains("\"ok\":true"), "{ack}");
    assert_eq!(child.wait().expect("server exit").code(), Some(0));

    (child, addr) = spawn_server(&comp, &wal);
    let health = read_health(&addr);
    assert_eq!(
        health.torn_truncated, 0,
        "a clean shutdown must leave no torn tail"
    );
    assert_eq!(health.epoch as usize, driver.history.len());
    assert!(
        health.replayed <= 7,
        "checkpoints every 7 appends must bound replay: {} replayed",
        health.replayed
    );
    assert_matches_oracle(&addr, &driver.history);

    let mut stream = TcpStream::connect(&addr).expect("connect for shutdown");
    let ack = round_trip(&mut stream, "{\"op\":\"shutdown\"}");
    assert!(ack.contains("\"ok\":true"), "{ack}");
    assert_eq!(child.wait().expect("server exit").code(), Some(0));
}
