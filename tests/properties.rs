//! Randomized-input tests over the core invariants. Formerly proptest;
//! now deterministic loops over cases drawn from the in-repo PRNG (the
//! offline environment cannot pull `proptest`), with the generators'
//! shapes preserved: quantized coordinates for ties/duplicates, small
//! stores, per-case seeds.

use skyup::core::cost::{CostFunction, SumCost};
use skyup::core::join::{lbc_entry, lbc_entry_admissible};
use skyup::core::{upgrade_single, UpgradeConfig};
use skyup::data::Rng;
use skyup::geom::dominance::{compare, dominates, dominates_or_equal, DomRelation};
use skyup::geom::{PointId, PointStore, Rect};
use skyup::rtree::{RTree, RTreeParams};
use skyup::skyline::{skyline_bbs, skyline_bnl, skyline_naive, skyline_sfs};

const DIMS: usize = 3;
const CASES: u64 = 128;

/// Quantized coordinate in `{0.00, 0.01, …, 0.99}` — plenty of ties and
/// duplicates, as the proptest strategy produced.
fn coord(rng: &mut Rng) -> f64 {
    rng.range_usize(100) as f64 / 100.0
}

fn point(rng: &mut Rng) -> Vec<f64> {
    (0..DIMS).map(|_| coord(rng)).collect()
}

/// Between 1 and `max - 1` quantized points.
fn points(rng: &mut Rng, max: usize) -> Vec<Vec<f64>> {
    let n = 1 + rng.range_usize(max - 1);
    (0..n).map(|_| point(rng)).collect()
}

fn store_of(rows: &[Vec<f64>]) -> PointStore {
    PointStore::from_rows(DIMS, rows.iter().cloned())
}

/// Runs `f` once per case with a per-case seeded generator.
fn for_each_case(test_tag: u64, f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(test_tag.wrapping_mul(0x9e37_79b9).wrapping_add(case));
        f(&mut rng);
    }
}

/// Dominance is a strict partial order: irreflexive, asymmetric,
/// transitive; `compare` is consistent with `dominates`.
#[test]
fn dominance_partial_order() {
    for_each_case(1, |rng| {
        let (a, b, c) = (point(rng), point(rng), point(rng));
        assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            assert!(!dominates(&b, &a));
            assert!(dominates_or_equal(&a, &b));
            assert_eq!(compare(&a, &b), DomRelation::Dominates);
        }
        if dominates(&a, &b) && dominates(&b, &c) {
            assert!(dominates(&a, &c));
        }
    });
}

/// All five skyline algorithms return exactly the same id set.
#[test]
fn skyline_algorithms_agree() {
    for_each_case(2, |rng| {
        let store = store_of(&points(rng, 120));
        let ids: Vec<PointId> = store.ids().collect();
        let mut naive = skyline_naive(&store, &ids);
        let mut bnl = skyline_bnl(&store, &ids);
        let mut sfs = skyline_sfs(&store, &ids);
        let mut dnc = skyup::skyline::skyline_dnc(&store, &ids);
        let tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(4));
        let mut bbs = skyline_bbs(&store, &tree);
        naive.sort();
        bnl.sort();
        sfs.sort();
        dnc.sort();
        bbs.sort();
        assert_eq!(naive, bnl);
        assert_eq!(naive, sfs);
        assert_eq!(naive, dnc);
        assert_eq!(naive, bbs);
    });
}

/// k-skybands nest, the 1-skyband is the skyline, and reported
/// dominator counts are exact.
#[test]
fn skyband_properties() {
    for_each_case(3, |rng| {
        let store = store_of(&points(rng, 80));
        let k = 1 + rng.range_usize(5);
        let ids: Vec<PointId> = store.ids().collect();
        let band = skyup::skyline::skyband(&store, &ids, k);
        let next = skyup::skyline::skyband(&store, &ids, k + 1);
        let band_ids: std::collections::HashSet<PointId> = band.iter().map(|(p, _)| *p).collect();
        let next_ids: std::collections::HashSet<PointId> = next.iter().map(|(p, _)| *p).collect();
        assert!(band_ids.is_subset(&next_ids), "skybands must nest");
        for (p, count) in &band {
            let exact = ids
                .iter()
                .filter(|&&q| q != *p && dominates(store.point(q), store.point(*p)))
                .count();
            assert_eq!(*count, exact);
            assert!(*count < k);
        }
        if k == 1 {
            let mut sky = skyline_naive(&store, &ids);
            sky.sort();
            let mut got: Vec<PointId> = band.iter().map(|(p, _)| *p).collect();
            got.sort();
            assert_eq!(got, sky);
        }
    });
}

/// Deleting a random subset leaves a structurally valid tree over
/// exactly the surviving points; queries match scans.
#[test]
fn rtree_delete_consistency() {
    for_each_case(4, |rng| {
        let store = store_of(&points(rng, 60));
        let mut tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(4));
        let mut alive: std::collections::BTreeSet<u32> = (0..store.len() as u32).collect();
        let victims = rng.range_usize(30);
        for _ in 0..victims {
            let id = PointId(rng.range_usize(store.len()) as u32);
            let was_alive = alive.remove(&id.0);
            assert_eq!(tree.remove(&store, id), was_alive);
        }
        assert_eq!(tree.len(), alive.len());
        let mut pts: Vec<u32> = tree.iter_points().iter().map(|p| p.0).collect();
        pts.sort_unstable();
        assert_eq!(pts, alive.iter().copied().collect::<Vec<_>>());
        // Range query still matches a scan over survivors.
        let range = Rect::new(&[0.2; DIMS], &[0.7; DIMS]);
        let mut got = tree.range_query(&store, &range);
        got.sort();
        let mut want: Vec<PointId> = alive
            .iter()
            .map(|&raw| PointId(raw))
            .filter(|&p| range.contains_point(store.point(p)))
            .collect();
        want.sort();
        assert_eq!(got, want);
    });
}

/// Store and tree persistence round-trips bit-exactly.
#[test]
fn persistence_roundtrip() {
    for_each_case(5, |rng| {
        let store = store_of(&points(rng, 60));
        let back = PointStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(store, back);
        let tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(4));
        let tree_back = RTree::from_bytes(&tree.to_bytes(), &back).unwrap();
        assert!(tree_back.validate(&back).is_ok());
        assert_eq!(tree_back.len(), tree.len());
    });
}

/// A bulk-loaded R-tree validates and contains exactly its input;
/// range queries match linear scans.
#[test]
fn rtree_roundtrip_and_range() {
    for_each_case(6, |rng| {
        let store = store_of(&points(rng, 150));
        let tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(4));
        assert!(tree.validate(&store).is_ok());

        let lo = point(rng);
        let span = point(rng);
        let hi: Vec<f64> = lo.iter().zip(&span).map(|(l, s)| l + s).collect();
        let range = Rect::new(&lo, &hi);
        let mut got = tree.range_query(&store, &range);
        got.sort();
        let mut want: Vec<PointId> = store
            .iter()
            .filter(|(_, c)| range.contains_point(c))
            .map(|(id, _)| id)
            .collect();
        want.sort();
        assert_eq!(got, want);
    });
}

/// Insertion-built trees validate and index the same point set.
#[test]
fn rtree_insertion_equivalence() {
    for_each_case(7, |rng| {
        let store = store_of(&points(rng, 80));
        let tree = RTree::from_insertion(&store, RTreeParams::with_max_entries(4));
        assert!(tree.validate(&store).is_ok());
        let mut pts = tree.iter_points();
        pts.sort();
        assert_eq!(pts, store.ids().collect::<Vec<_>>());
    });
}

/// Algorithm 1: the upgraded product is never dominated by any
/// competitor (not just the skyline), never worsens an attribute, has
/// non-negative cost equal to the product-cost delta, and costs zero
/// iff the product was already non-dominated.
#[test]
fn upgrade_single_invariants() {
    for_each_case(8, |rng| {
        let store = store_of(&points(rng, 100));
        let t = point(rng);
        let dominators: Vec<PointId> = store
            .iter()
            .filter(|(_, c)| dominates(c, &t))
            .map(|(id, _)| id)
            .collect();
        let skyline = skyline_naive(&store, &dominators);
        let cost_fn = SumCost::reciprocal(DIMS, 1e-2);
        let cfg = UpgradeConfig::with_epsilon(1e-4);
        let (cost, upgraded) = upgrade_single(&store, &skyline, &t, &cost_fn, &cfg);

        assert!(cost >= 0.0);
        assert!(upgraded.iter().zip(&t).all(|(u, o)| u <= o));
        for (_, c) in store.iter() {
            assert!(
                !dominates(c, &upgraded),
                "upgraded {upgraded:?} dominated by {c:?}"
            );
        }
        let delta = cost_fn.product_cost(&upgraded) - cost_fn.product_cost(&t);
        assert!((cost - delta).abs() < 1e-9);
        if dominators.is_empty() {
            assert_eq!(cost, 0.0);
            assert_eq!(upgraded, t);
        } else {
            assert!(cost > 0.0);
        }
    });
}

/// The extended candidate set never increases the reported cost.
#[test]
fn extended_candidates_never_worse() {
    for_each_case(9, |rng| {
        let store = store_of(&points(rng, 60));
        let t = point(rng);
        let dominators: Vec<PointId> = store
            .iter()
            .filter(|(_, c)| dominates(c, &t))
            .map(|(id, _)| id)
            .collect();
        let skyline = skyline_naive(&store, &dominators);
        let cost_fn = SumCost::reciprocal(DIMS, 1e-2);
        let base_cfg = UpgradeConfig::with_epsilon(1e-4);
        let ext_cfg = UpgradeConfig {
            extended_candidates: true,
            ..base_cfg
        };
        let (base, _) = upgrade_single(&store, &skyline, &t, &cost_fn, &base_cfg);
        let (ext, up) = upgrade_single(&store, &skyline, &t, &cost_fn, &ext_cfg);
        assert!(ext <= base + 1e-12);
        for (_, c) in store.iter() {
            assert!(!dominates(c, &up));
        }
    });
}

/// The admissible per-entry bound never exceeds the true cost of
/// upgrading any product in the `e_T` box against the points inside the
/// `e_P` box — and never exceeds the paper's LBC.
#[test]
fn admissible_bound_is_admissible() {
    for_each_case(10, |rng| {
        let e_t_min = point(rng);
        let store = store_of(&points(rng, 30));
        let t_offset = point(rng);
        // e_P = MBR of the generated points.
        let mut lo = vec![f64::INFINITY; DIMS];
        let mut hi = vec![f64::NEG_INFINITY; DIMS];
        for (_, c) in store.iter() {
            for i in 0..DIMS {
                lo[i] = lo[i].min(c[i]);
                hi[i] = hi[i].max(c[i]);
            }
        }
        let cost_fn = SumCost::reciprocal(DIMS, 1e-2);
        let adm = lbc_entry_admissible(&e_t_min, &hi, &cost_fn);
        let paper = lbc_entry(&e_t_min, &lo, &hi, &cost_fn).cost;
        assert!(adm <= paper + 1e-12, "admissible {adm} > paper {paper}");

        // A representative product in e_T's box: e_t_min shifted up.
        let t: Vec<f64> = e_t_min.iter().zip(&t_offset).map(|(a, b)| a + b).collect();
        let dominators: Vec<PointId> = store
            .iter()
            .filter(|(_, c)| dominates(c, &t))
            .map(|(id, _)| id)
            .collect();
        let skyline = skyline_naive(&store, &dominators);
        let cfg = UpgradeConfig::with_epsilon(1e-6);
        let (exact, _) = upgrade_single(&store, &skyline, &t, &cost_fn, &cfg);
        assert!(
            adm <= exact + 1e-9,
            "admissible bound {adm} exceeds exact cost {exact}"
        );
    });
}

/// Monotonicity of the experiment cost function: a dominating product
/// never costs less.
#[test]
fn cost_function_monotone() {
    for_each_case(11, |rng| {
        let (a, b) = (point(rng), point(rng));
        let cost_fn = SumCost::reciprocal(DIMS, 1e-2);
        if dominates(&a, &b) {
            assert!(cost_fn.product_cost(&a) >= cost_fn.product_cost(&b));
        }
    });
}

/// Lays out `rows` dims-major with `stride == rows.len()` for the free
/// columnar kernels.
fn to_cols(rows: &[Vec<f64>]) -> Vec<f64> {
    let n = rows.len();
    let mut cols = vec![0.0; DIMS * n];
    for (i, p) in rows.iter().enumerate() {
        for (d, &x) in p.iter().enumerate() {
            cols[d * n + i] = x;
        }
    }
    cols
}

/// A quantized coordinate that is sometimes `-0.0`: the kernels compare
/// raw `f64`s, and IEEE `-0.0 == +0.0` must hold through the mask loop
/// and the zone maps alike.
fn coord_signed_zero(rng: &mut Rng) -> f64 {
    let c = rng.range_usize(4) as f64 / 4.0;
    if c == 0.0 && rng.range_usize(2) == 0 {
        -0.0
    } else {
        c
    }
}

/// The three dominance scans — scalar loop, branch-free columnar
/// kernel, zone-mapped [`ColumnarPoints`] — agree bit-for-bit on
/// verdicts and dominator position lists, with exact work accounting,
/// at every block-boundary size and with duplicate and `±0.0`
/// coordinates.
#[test]
fn kernel_scalar_equivalence_across_paths() {
    use skyup::geom::{collect_dominators_cols, dominated_by_any_cols, ColumnarPoints, DOM_BLOCK};
    for_each_case(12, |rng| {
        // Sizes straddling the 64-lane block boundary, plus a random
        // small size for the degenerate shapes.
        let sizes = [63, 64, 65, 128, 129, 1 + rng.range_usize(62)];
        let n = sizes[rng.range_usize(sizes.len())];
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..DIMS).map(|_| coord_signed_zero(rng)).collect())
            .collect();
        let cols_raw = to_cols(&rows);
        let mut cols = ColumnarPoints::new(DIMS);
        for r in &rows {
            cols.push(r);
        }
        let total_blocks = n.div_ceil(DOM_BLOCK) as u64;
        for _ in 0..8 {
            let t: Vec<f64> = (0..DIMS).map(|_| coord_signed_zero(rng)).collect();
            let scalar_positions: Vec<u32> = rows
                .iter()
                .enumerate()
                .filter(|(_, p)| dominates(p, &t))
                .map(|(i, _)| i as u32)
                .collect();
            let scalar_dominated = !scalar_positions.is_empty();

            // Membership: identical verdicts on both columnar paths.
            let raw = dominated_by_any_cols(&cols_raw, n, n, &t);
            let zoned = cols.dominated_by_any(&t);
            assert_eq!(raw.dominated, scalar_dominated, "raw kernel verdict");
            assert_eq!(zoned.dominated, scalar_dominated, "zoned verdict");
            // A non-dominated membership scan runs to completion, so
            // the conservation law is exact on it too.
            if !scalar_dominated {
                assert_eq!(raw.blocks, total_blocks);
                assert_eq!(zoned.blocks + zoned.skipped, total_blocks);
            }

            // Collect: identical position lists, exact accounting.
            let mut raw_out = Vec::new();
            let raw = collect_dominators_cols(&cols_raw, n, n, &t, &mut raw_out);
            let mut zoned_out = Vec::new();
            let zoned = cols.collect_dominators(&t, &mut zoned_out);
            assert_eq!(raw_out, scalar_positions, "raw collect positions");
            assert_eq!(zoned_out, scalar_positions, "zoned collect positions");
            assert_eq!(raw.points, n as u64);
            assert_eq!(raw.blocks, total_blocks);
            assert_eq!(raw.skipped, 0, "free kernel carries no zone maps");
            assert_eq!(
                zoned.blocks + zoned.skipped,
                total_blocks,
                "collect conservation law"
            );
            // Points covered == total minus the points of skipped
            // blocks. Only the tail block is partial, so the deficit is
            // `skipped * 64`, less `64 - tail` when the skipped set
            // included the tail block.
            let deficit = n as u64 - zoned.points;
            let tail = (n % DOM_BLOCK) as u64;
            let all_full = zoned.skipped * DOM_BLOCK as u64;
            let with_tail = if tail != 0 && zoned.skipped > 0 {
                all_full - DOM_BLOCK as u64 + tail
            } else {
                all_full
            };
            assert!(
                deficit == all_full || deficit == with_tail,
                "covered points {} inconsistent with {} skipped blocks of {n}",
                zoned.points,
                zoned.skipped
            );
        }
    });
}

/// Zone-map soundness oracle: a block whose min corner does not admit
/// the target (the skip condition) contains no dominator — checked
/// point-by-point — and the skip *count* matches the number of
/// non-admitting blocks exactly on full collect scans.
#[test]
fn zone_map_skips_are_sound_and_exactly_counted() {
    use skyup::geom::{ColumnarPoints, DOM_BLOCK};
    for_each_case(13, |rng| {
        let rows = points(rng, 200);
        let n = rows.len();
        let mut cols = ColumnarPoints::new(DIMS);
        for r in &rows {
            cols.push(r);
        }
        for _ in 0..8 {
            let t = point(rng);
            let mut non_admitting = 0u64;
            for b in 0..cols.blocks() {
                let (lo, hi) = cols.block_bounds(b).expect("block in range");
                assert_eq!(lo.len(), DIMS);
                assert_eq!(hi.len(), DIMS);
                let admits = lo.iter().zip(&t).all(|(&l, &y)| l <= y);
                if admits {
                    continue;
                }
                non_admitting += 1;
                // The oracle: every point of a non-admitting block is
                // individually unable to dominate the target.
                let lo_i = b * DOM_BLOCK;
                let hi_i = ((b + 1) * DOM_BLOCK).min(n);
                for p in &rows[lo_i..hi_i] {
                    assert!(
                        !dominates(p, &t),
                        "zone map would skip a block holding dominator {p:?} of {t:?}"
                    );
                }
            }
            let mut out = Vec::new();
            let scan = cols.collect_dominators(&t, &mut out);
            assert_eq!(
                scan.skipped, non_admitting,
                "skip count != non-admitting block count"
            );
            assert_eq!(
                scan.blocks + scan.skipped,
                cols.blocks() as u64,
                "collect conservation law"
            );
        }
    });
}
