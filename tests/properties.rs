//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;
use skyup::core::cost::{CostFunction, SumCost};
use skyup::core::join::{lbc_entry, lbc_entry_admissible};
use skyup::core::{upgrade_single, UpgradeConfig};
use skyup::geom::dominance::{compare, dominates, dominates_or_equal, DomRelation};
use skyup::geom::{PointId, PointStore, Rect};
use skyup::rtree::{RTree, RTreeParams};
use skyup::skyline::{skyline_bbs, skyline_bnl, skyline_naive, skyline_sfs};

const DIMS: usize = 3;

fn coord() -> impl Strategy<Value = f64> {
    // Quantized coordinates produce plenty of ties and duplicates.
    (0u32..100).prop_map(|v| v as f64 / 100.0)
}

fn point() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(coord(), DIMS)
}

fn points(max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(point(), 1..max)
}

fn store_of(rows: &[Vec<f64>]) -> PointStore {
    PointStore::from_rows(DIMS, rows.iter().cloned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dominance is a strict partial order: irreflexive, asymmetric,
    /// transitive; `compare` is consistent with `dominates`.
    #[test]
    fn dominance_partial_order(a in point(), b in point(), c in point()) {
        prop_assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
            prop_assert!(dominates_or_equal(&a, &b));
            prop_assert_eq!(compare(&a, &b), DomRelation::Dominates);
        }
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    /// All five skyline algorithms return exactly the same id set.
    #[test]
    fn skyline_algorithms_agree(rows in points(120)) {
        let store = store_of(&rows);
        let ids: Vec<PointId> = store.ids().collect();
        let mut naive = skyline_naive(&store, &ids);
        let mut bnl = skyline_bnl(&store, &ids);
        let mut sfs = skyline_sfs(&store, &ids);
        let mut dnc = skyup::skyline::skyline_dnc(&store, &ids);
        let tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(4));
        let mut bbs = skyline_bbs(&store, &tree);
        naive.sort(); bnl.sort(); sfs.sort(); dnc.sort(); bbs.sort();
        prop_assert_eq!(&naive, &bnl);
        prop_assert_eq!(&naive, &sfs);
        prop_assert_eq!(&naive, &dnc);
        prop_assert_eq!(&naive, &bbs);
    }

    /// k-skybands nest, the 1-skyband is the skyline, and reported
    /// dominator counts are exact.
    #[test]
    fn skyband_properties(rows in points(80), k in 1usize..6) {
        let store = store_of(&rows);
        let ids: Vec<PointId> = store.ids().collect();
        let band = skyup::skyline::skyband(&store, &ids, k);
        let next = skyup::skyline::skyband(&store, &ids, k + 1);
        let band_ids: std::collections::HashSet<PointId> =
            band.iter().map(|(p, _)| *p).collect();
        let next_ids: std::collections::HashSet<PointId> =
            next.iter().map(|(p, _)| *p).collect();
        prop_assert!(band_ids.is_subset(&next_ids), "skybands must nest");
        for (p, count) in &band {
            let exact = ids
                .iter()
                .filter(|&&q| q != *p && dominates(store.point(q), store.point(*p)))
                .count();
            prop_assert_eq!(*count, exact);
            prop_assert!(*count < k);
        }
        if k == 1 {
            let mut sky = skyline_naive(&store, &ids);
            sky.sort();
            let mut got: Vec<PointId> = band.iter().map(|(p, _)| *p).collect();
            got.sort();
            prop_assert_eq!(got, sky);
        }
    }

    /// Deleting a random subset leaves a structurally valid tree over
    /// exactly the surviving points; queries match scans.
    #[test]
    fn rtree_delete_consistency(rows in points(60), victims in proptest::collection::vec(any::<u8>(), 0..30)) {
        let store = store_of(&rows);
        let mut tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(4));
        let mut alive: std::collections::BTreeSet<u32> =
            (0..store.len() as u32).collect();
        for v in victims {
            let id = PointId(v as u32 % store.len() as u32);
            let was_alive = alive.remove(&id.0);
            prop_assert_eq!(tree.remove(&store, id), was_alive);
        }
        prop_assert_eq!(tree.len(), alive.len());
        let mut pts: Vec<u32> = tree.iter_points().iter().map(|p| p.0).collect();
        pts.sort_unstable();
        prop_assert_eq!(pts, alive.iter().copied().collect::<Vec<_>>());
        // Range query still matches a scan over survivors.
        let range = Rect::new(&[0.2; DIMS], &[0.7; DIMS]);
        let mut got = tree.range_query(&store, &range);
        got.sort();
        let mut want: Vec<PointId> = alive
            .iter()
            .map(|&raw| PointId(raw))
            .filter(|&p| range.contains_point(store.point(p)))
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Store and tree persistence round-trips bit-exactly.
    #[test]
    fn persistence_roundtrip(rows in points(60)) {
        let store = store_of(&rows);
        let back = PointStore::from_bytes(&store.to_bytes()).unwrap();
        prop_assert_eq!(&store, &back);
        let tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(4));
        let tree_back = RTree::from_bytes(&tree.to_bytes(), &back).unwrap();
        prop_assert!(tree_back.validate(&back).is_ok());
        prop_assert_eq!(tree_back.len(), tree.len());
    }

    /// A bulk-loaded R-tree validates and contains exactly its input;
    /// range queries match linear scans.
    #[test]
    fn rtree_roundtrip_and_range(rows in points(150), lo in point(), span in point()) {
        let store = store_of(&rows);
        let tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(4));
        prop_assert!(tree.validate(&store).is_ok());

        let hi: Vec<f64> = lo.iter().zip(&span).map(|(l, s)| l + s).collect();
        let range = Rect::new(&lo, &hi);
        let mut got = tree.range_query(&store, &range);
        got.sort();
        let mut want: Vec<PointId> = store
            .iter()
            .filter(|(_, c)| range.contains_point(c))
            .map(|(id, _)| id)
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Insertion-built trees validate and index the same point set.
    #[test]
    fn rtree_insertion_equivalence(rows in points(80)) {
        let store = store_of(&rows);
        let tree = RTree::from_insertion(&store, RTreeParams::with_max_entries(4));
        prop_assert!(tree.validate(&store).is_ok());
        let mut pts = tree.iter_points();
        pts.sort();
        prop_assert_eq!(pts, store.ids().collect::<Vec<_>>());
    }

    /// Algorithm 1: the upgraded product is never dominated by any
    /// competitor (not just the skyline), never worsens an attribute,
    /// has non-negative cost equal to the product-cost delta, and costs
    /// zero iff the product was already non-dominated.
    #[test]
    fn upgrade_single_invariants(rows in points(100), t in point()) {
        let store = store_of(&rows);
        let dominators: Vec<PointId> = store
            .iter()
            .filter(|(_, c)| dominates(c, &t))
            .map(|(id, _)| id)
            .collect();
        let skyline = skyline_naive(&store, &dominators);
        let cost_fn = SumCost::reciprocal(DIMS, 1e-2);
        let cfg = UpgradeConfig::with_epsilon(1e-4);
        let (cost, upgraded) = upgrade_single(&store, &skyline, &t, &cost_fn, &cfg);

        prop_assert!(cost >= 0.0);
        prop_assert!(upgraded.iter().zip(&t).all(|(u, o)| u <= o));
        for (_, c) in store.iter() {
            prop_assert!(
                !dominates(c, &upgraded),
                "upgraded {:?} dominated by {:?}", upgraded, c
            );
        }
        let delta = cost_fn.product_cost(&upgraded) - cost_fn.product_cost(&t);
        prop_assert!((cost - delta).abs() < 1e-9);
        if dominators.is_empty() {
            prop_assert_eq!(cost, 0.0);
            prop_assert_eq!(&upgraded, &t);
        } else {
            prop_assert!(cost > 0.0);
        }
    }

    /// The extended candidate set never increases the reported cost.
    #[test]
    fn extended_candidates_never_worse(rows in points(60), t in point()) {
        let store = store_of(&rows);
        let dominators: Vec<PointId> = store
            .iter()
            .filter(|(_, c)| dominates(c, &t))
            .map(|(id, _)| id)
            .collect();
        let skyline = skyline_naive(&store, &dominators);
        let cost_fn = SumCost::reciprocal(DIMS, 1e-2);
        let base_cfg = UpgradeConfig::with_epsilon(1e-4);
        let ext_cfg = UpgradeConfig { extended_candidates: true, ..base_cfg };
        let (base, _) = upgrade_single(&store, &skyline, &t, &cost_fn, &base_cfg);
        let (ext, up) = upgrade_single(&store, &skyline, &t, &cost_fn, &ext_cfg);
        prop_assert!(ext <= base + 1e-12);
        for (_, c) in store.iter() {
            prop_assert!(!dominates(c, &up));
        }
    }

    /// The admissible per-entry bound never exceeds the true cost of
    /// upgrading any product in the `e_T` box against the points inside
    /// the `e_P` box — and never exceeds the paper's LBC.
    #[test]
    fn admissible_bound_is_admissible(
        e_t_min in point(),
        p_rows in points(30),
        t_offset in point(),
    ) {
        let store = store_of(&p_rows);
        // e_P = MBR of the generated points.
        let mut lo = vec![f64::INFINITY; DIMS];
        let mut hi = vec![f64::NEG_INFINITY; DIMS];
        for (_, c) in store.iter() {
            for i in 0..DIMS {
                lo[i] = lo[i].min(c[i]);
                hi[i] = hi[i].max(c[i]);
            }
        }
        let cost_fn = SumCost::reciprocal(DIMS, 1e-2);
        let adm = lbc_entry_admissible(&e_t_min, &hi, &cost_fn);
        let paper = lbc_entry(&e_t_min, &lo, &hi, &cost_fn).cost;
        prop_assert!(adm <= paper + 1e-12, "admissible {adm} > paper {paper}");

        // A representative product in e_T's box: e_t_min shifted up.
        let t: Vec<f64> = e_t_min.iter().zip(&t_offset).map(|(a, b)| a + b).collect();
        let dominators: Vec<PointId> = store
            .iter()
            .filter(|(_, c)| dominates(c, &t))
            .map(|(id, _)| id)
            .collect();
        let skyline = skyline_naive(&store, &dominators);
        let cfg = UpgradeConfig::with_epsilon(1e-6);
        let (exact, _) = upgrade_single(&store, &skyline, &t, &cost_fn, &cfg);
        prop_assert!(
            adm <= exact + 1e-9,
            "admissible bound {adm} exceeds exact cost {exact}"
        );
    }

    /// Monotonicity of the experiment cost function: a dominating
    /// product never costs less.
    #[test]
    fn cost_function_monotone(a in point(), b in point()) {
        let cost_fn = SumCost::reciprocal(DIMS, 1e-2);
        if dominates(&a, &b) {
            prop_assert!(cost_fn.product_cost(&a) >= cost_fn.product_cost(&b));
        }
    }
}
