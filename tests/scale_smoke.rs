//! A mid-scale end-to-end smoke test: the full pipeline at a size where
//! index pruning actually matters, still fast enough for CI.

use skyup::core::cost::SumCost;
use skyup::core::join::{join_topk, JoinUpgrader, LowerBound};
use skyup::core::{improved_probing_topk, UpgradeConfig};
use skyup::data::synthetic::{paper_competitors, paper_products, Distribution};
use skyup::geom::dominance::dominates;
use skyup::rtree::{RTree, RTreeParams};

#[test]
fn mid_scale_end_to_end() {
    let dims = 4;
    let p = paper_competitors(4_000, dims, Distribution::AntiCorrelated, 1);
    let t = paper_products(400, dims, Distribution::AntiCorrelated, 2);
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let rt = RTree::bulk_load(&t, RTreeParams::default());
    rp.validate(&p).unwrap();
    rt.validate(&t).unwrap();

    let cost_fn = SumCost::reciprocal(dims, 1e-3);
    let cfg = UpgradeConfig::default();
    let k = 10;

    let probe = improved_probing_topk(&p, &rp, &t, k, &cost_fn, &cfg);
    assert_eq!(probe.len(), k);

    for bound in LowerBound::ALL {
        let join = join_topk(&p, &rp, &t, &rt, k, &cost_fn, cfg, bound);
        assert_eq!(join.len(), k, "{bound:?}");
        for (a, b) in join.iter().zip(&probe) {
            assert!(
                (a.cost - b.cost).abs() < 1e-6,
                "{bound:?}: {} vs {}",
                a.cost,
                b.cost
            );
        }
        // Every reported upgrade escapes every competitor.
        for r in &join {
            assert!(p.iter().all(|(_, c)| !dominates(c, &r.upgraded)));
        }
    }
}

#[test]
fn join_progressiveness_at_scale() {
    let dims = 3;
    let p = paper_competitors(10_000, dims, Distribution::Independent, 3);
    let t = paper_products(2_000, dims, Distribution::Independent, 4);
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let rt = RTree::bulk_load(&t, RTreeParams::default());
    let cost_fn = SumCost::reciprocal(dims, 1e-3);

    let mut join = JoinUpgrader::new(
        &p,
        &rp,
        &t,
        &rt,
        &cost_fn,
        UpgradeConfig::default(),
        LowerBound::Conservative,
    );
    let top: Vec<_> = join.by_ref().take(20).collect();
    assert_eq!(top.len(), 20);
    let stats = join.stats();
    assert!(
        (stats.exact_upgrades as usize) < t.len() / 10,
        "resolved {} of {} — pruning ineffective",
        stats.exact_upgrades,
        t.len()
    );
}
