//! Progressiveness guarantees of the join (the property Figures 5, 10,
//! and 11 measure).

use skyup::core::cost::SumCost;
use skyup::core::join::{BoundMode, JoinUpgrader, LowerBound};
use skyup::core::UpgradeConfig;
use skyup::data::synthetic::{paper_competitors, paper_products, Distribution};
use skyup::rtree::{RTree, RTreeParams};

fn setup(
    dist: Distribution,
    np: usize,
    nt: usize,
    dims: usize,
) -> (
    skyup::geom::PointStore,
    RTree,
    skyup::geom::PointStore,
    RTree,
) {
    let p = paper_competitors(np, dims, dist, 1000);
    let t = paper_products(nt, dims, dist, 2000);
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let rt = RTree::bulk_load(&t, RTreeParams::default());
    (p, rp, t, rt)
}

#[test]
fn emission_is_ascending_in_admissible_mode() {
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let (p, rp, t, rt) = setup(dist, 5000, 800, 3);
        let cost_fn = SumCost::reciprocal(3, 1e-3);
        for bound in LowerBound::ALL {
            let join =
                JoinUpgrader::new(&p, &rp, &t, &rt, &cost_fn, UpgradeConfig::default(), bound)
                    .with_bound_mode(BoundMode::Admissible);
            let all: Vec<_> = join.collect();
            assert_eq!(all.len(), 800);
            assert!(
                all.windows(2).all(|w| w[0].cost <= w[1].cost + 1e-9),
                "{dist:?}/{bound:?}: non-ascending emission"
            );
        }
    }
}

#[test]
fn emission_is_ascending_with_paper_bounds_on_paper_domains() {
    // On the paper's disjoint domains, the paper bounds behave.
    let (p, rp, t, rt) = setup(Distribution::AntiCorrelated, 5000, 500, 2);
    let cost_fn = SumCost::reciprocal(2, 1e-3);
    for bound in LowerBound::ALL {
        let join = JoinUpgrader::new(&p, &rp, &t, &rt, &cost_fn, UpgradeConfig::default(), bound);
        let first_fifty: Vec<_> = join.take(50).collect();
        // The paper's LBC is only approximately admissible (DESIGN.md
        // §3), so allow a couple of inversions even here.
        let inversions = first_fifty
            .windows(2)
            .filter(|w| w[0].cost > w[1].cost + 1e-9)
            .count();
        assert!(
            inversions <= 2,
            "{bound:?}: {inversions} inversions in the first 50 results"
        );
    }
}

#[test]
fn early_stopping_touches_few_products() {
    // The point of progressiveness: k = 1 must not resolve most of T.
    let (p, rp, t, rt) = setup(Distribution::AntiCorrelated, 10_000, 2_000, 3);
    let cost_fn = SumCost::reciprocal(3, 1e-3);
    let mut join = JoinUpgrader::new(
        &p,
        &rp,
        &t,
        &rt,
        &cost_fn,
        UpgradeConfig::default(),
        LowerBound::Conservative,
    );
    let _ = join.next().expect("a result exists");
    let stats = join.stats();
    assert!(
        stats.exact_upgrades < 200,
        "k=1 resolved {} of 2000 products — not progressive",
        stats.exact_upgrades
    );
}

#[test]
fn stats_accumulate_monotonically() {
    let (p, rp, t, rt) = setup(Distribution::Independent, 3000, 400, 2);
    let cost_fn = SumCost::reciprocal(2, 1e-3);
    let mut join = JoinUpgrader::new(
        &p,
        &rp,
        &t,
        &rt,
        &cost_fn,
        UpgradeConfig::default(),
        LowerBound::Naive,
    );
    let mut last = join.stats();
    for _ in 0..20 {
        if join.next().is_none() {
            break;
        }
        let now = join.stats();
        assert!(now.results_emitted > last.results_emitted);
        assert!(now.heap_pushes >= last.heap_pushes);
        assert!(now.exact_upgrades >= last.exact_upgrades);
        last = now;
    }
    assert_eq!(last.results_emitted, 20);
}

#[test]
fn iterator_fuses_cleanly() {
    let (p, rp, t, rt) = setup(Distribution::Independent, 500, 60, 2);
    let cost_fn = SumCost::reciprocal(2, 1e-3);
    let mut join = JoinUpgrader::new(
        &p,
        &rp,
        &t,
        &rt,
        &cost_fn,
        UpgradeConfig::default(),
        LowerBound::Aggressive,
    );
    let mut count = 0;
    while join.next().is_some() {
        count += 1;
    }
    assert_eq!(count, 60);
    // Exhausted: keeps returning None.
    assert!(join.next().is_none());
    assert!(join.next().is_none());
}
